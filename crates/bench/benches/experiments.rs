//! Per-experiment regeneration benches: one Criterion group per paper
//! table/figure, timing the pipeline that produces each artifact on a
//! reduced grid. The full-grid artifacts come from the `wb-harness`
//! binaries (`cargo run -p wb-harness --bin <exp>`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wb_bench::{js_once, native_once, representative_benchmarks, wasm_once};
use wb_benchmarks::apps::longjs::LongOp;
use wb_benchmarks::InputSize;
use wb_core::apps;
use wb_core::stats::speedup_split;
use wb_env::{Environment, JitMode, TierPolicy};
use wb_minic::OptLevel;

/// Fig 5 / Fig 6 / Table 2 / Fig 11: opt-level sweep on one benchmark.
fn bench_opt_levels(c: &mut Criterion) {
    let gemm = wb_benchmarks::suite::find("gemm").expect("gemm");
    let mut g = c.benchmark_group("fig5_fig6_table2_fig11");
    for level in OptLevel::EVALUATED {
        g.bench_with_input(BenchmarkId::new("wasm", level.name()), &level, |b, &level| {
            b.iter(|| black_box(wasm_once(&gemm, InputSize::S, level).time))
        });
        g.bench_with_input(BenchmarkId::new("x86", level.name()), &level, |b, &level| {
            b.iter(|| black_box(native_once(&gemm, InputSize::S, level).time))
        });
    }
    g.finish();
}

/// Fig 9 / Tables 3–6: the input-size sweep row for one benchmark.
fn bench_input_sizes(c: &mut Criterion) {
    let jacobi = wb_benchmarks::suite::find("jacobi-2d").expect("jacobi-2d");
    let mut g = c.benchmark_group("fig9_tables3_6");
    for size in [InputSize::XS, InputSize::M] {
        g.bench_with_input(BenchmarkId::new("pair", size.code()), &size, |b, &size| {
            b.iter(|| {
                let w = wasm_once(&jacobi, size, OptLevel::O2);
                let j = js_once(&jacobi, size, OptLevel::O2);
                black_box(speedup_split(&[(j.time.0, w.time.0)]))
            })
        });
    }
    g.finish();
}

/// Fig 10 / Table 7: the JIT/tier configurations on one benchmark.
fn bench_jit_configs(c: &mut Criterion) {
    let aes = wb_benchmarks::suite::find("AES").expect("AES");
    let mut g = c.benchmark_group("fig10_table7");
    g.bench_function("js_jit_on_off", |b| {
        b.iter(|| {
            let mut spec = wb_core::JsSpec::new(aes.source);
            spec.defines = aes.defines(InputSize::S);
            let on = wb_core::run_compiled_js(&spec).expect("runs");
            spec.jit = JitMode::Disabled;
            let off = wb_core::run_compiled_js(&spec).expect("runs");
            black_box(off.time.0 / on.time.0)
        })
    });
    g.bench_function("wasm_tier_policies", |b| {
        b.iter(|| {
            let mut spec = wb_core::WasmSpec::new(aes.source);
            spec.defines = aes.defines(InputSize::S);
            let default = wb_core::run_wasm(&spec).expect("runs");
            spec.tier_policy = TierPolicy::BasicOnly;
            let basic = wb_core::run_wasm(&spec).expect("runs");
            spec.tier_policy = TierPolicy::OptimizingOnly;
            let opt = wb_core::run_wasm(&spec).expect("runs");
            black_box((basic.time.0 / default.time.0, opt.time.0 / default.time.0))
        })
    });
    g.finish();
}

/// Figs 12/13 / Table 8: the six-environment sweep for one benchmark.
fn bench_environments(c: &mut Criterion) {
    let durbin = wb_benchmarks::suite::find("durbin").expect("durbin");
    c.bench_function("fig12_13_table8/six_envs", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for env in Environment::all_six() {
                let mut spec = wb_core::WasmSpec::new(durbin.source);
                spec.defines = durbin.defines(InputSize::S);
                spec.env = env;
                total += wb_core::run_wasm(&spec).expect("runs").time.0;
            }
            black_box(total)
        })
    });
}

/// Table 9: a manual-JS row.
fn bench_manual_js(c: &mut Criterion) {
    let manual = wb_benchmarks::manual_js::all_manual();
    let sha = manual.iter().find(|m| m.name == "SHA (W3C)").expect("SHA (W3C)");
    let src = sha.full_source();
    c.bench_function("table9/sha_w3c", |b| {
        b.iter(|| {
            let spec = wb_core::JsSpec::new(&src);
            black_box(wb_core::run_manual_js(&spec).expect("runs").time)
        })
    });
}

/// Tables 10/12: the application drivers.
fn bench_apps(c: &mut Criterion) {
    let env = Environment::desktop_chrome();
    let mut g = c.benchmark_group("table10_table12");
    g.sample_size(10);
    g.bench_function("longjs_mul_pair", |b| {
        b.iter(|| {
            let w = apps::longjs_wasm(LongOp::Multiplication, env).expect("wasm");
            let j = apps::longjs_js(LongOp::Multiplication, env).expect("js");
            black_box((w.arith.total(), j.arith.total()))
        })
    });
    g.bench_function("hyphen_en_pair", |b| {
        b.iter(|| {
            let w = apps::hyphen_wasm(wb_benchmarks::apps::hyphen::Lang::EnUs, env).expect("wasm");
            let j = apps::hyphen_js(wb_benchmarks::apps::hyphen::Lang::EnUs, env).expect("js");
            black_box(w.time.0 / j.time.0)
        })
    });
    g.bench_function("ctxswitch_microbench", |b| {
        b.iter(|| black_box(apps::context_switch_bench(env, 100).expect("runs")))
    });
    g.finish();
}

/// §4.2.2: the Cheerp/Emscripten pair on the representative slice.
fn bench_compilers(c: &mut Criterion) {
    let reps = representative_benchmarks();
    c.bench_function("compilers_4_2_2/cheerp_vs_emscripten", |b| {
        b.iter(|| {
            let bench = &reps[0];
            let cheerp = wasm_once(bench, InputSize::XS, OptLevel::O2);
            let mut spec = wb_core::WasmSpec::new(bench.source);
            spec.defines = bench.defines(InputSize::XS);
            spec.toolchain = wb_env::Toolchain::Emscripten;
            let emscripten = wb_core::run_wasm(&spec).expect("runs");
            black_box(cheerp.time.0 / emscripten.time.0)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_opt_levels,
        bench_input_sizes,
        bench_jit_configs,
        bench_environments,
        bench_manual_js,
        bench_apps,
        bench_compilers
}
criterion_main!(benches);
