//! Per-experiment regeneration benches: one group per paper
//! table/figure, timing the pipeline that produces each artifact on a
//! reduced grid (std-only timing harness; run with
//! `cargo bench -p wb-bench --bench experiments`). The full-grid
//! artifacts come from the `wb-harness` binaries
//! (`cargo run -p wb-harness --bin <exp>`).

use std::hint::black_box;
use wb_bench::timing::Bench;
use wb_bench::{js_once, native_once, representative_benchmarks, wasm_once};
use wb_benchmarks::apps::longjs::LongOp;
use wb_benchmarks::InputSize;
use wb_core::apps;
use wb_core::stats::speedup_split;
use wb_env::{Environment, JitMode, TierPolicy};
use wb_minic::OptLevel;

/// Fig 5 / Fig 6 / Table 2 / Fig 11: opt-level sweep on one benchmark.
fn bench_opt_levels() {
    let gemm = wb_benchmarks::suite::find("gemm").expect("gemm");
    let g = Bench::group("fig5_fig6_table2_fig11");
    for level in OptLevel::EVALUATED {
        g.run(&format!("wasm_{}", level.name()), || {
            wasm_once(&gemm, InputSize::S, level).time
        });
        g.run(&format!("x86_{}", level.name()), || {
            native_once(&gemm, InputSize::S, level).time
        });
    }
}

/// Fig 9 / Tables 3–6: the input-size sweep row for one benchmark.
fn bench_input_sizes() {
    let jacobi = wb_benchmarks::suite::find("jacobi-2d").expect("jacobi-2d");
    let g = Bench::group("fig9_tables3_6");
    for size in [InputSize::XS, InputSize::M] {
        g.run(&format!("pair_{}", size.code()), || {
            let w = wasm_once(&jacobi, size, OptLevel::O2);
            let j = js_once(&jacobi, size, OptLevel::O2);
            speedup_split(&[(j.time.0, w.time.0)])
        });
    }
}

/// Fig 10 / Table 7: the JIT/tier configurations on one benchmark.
fn bench_jit_configs() {
    let aes = wb_benchmarks::suite::find("AES").expect("AES");
    let g = Bench::group("fig10_table7");
    g.run("js_jit_on_off", || {
        let mut spec = wb_core::JsSpec::new(aes.source);
        spec.defines = aes.defines(InputSize::S);
        let on = wb_core::run_compiled_js(&spec).expect("runs");
        spec.jit = JitMode::Disabled;
        let off = wb_core::run_compiled_js(&spec).expect("runs");
        off.time.0 / on.time.0
    });
    g.run("wasm_tier_policies", || {
        let mut spec = wb_core::WasmSpec::new(aes.source);
        spec.defines = aes.defines(InputSize::S);
        let default = wb_core::run_wasm(&spec).expect("runs");
        spec.tier_policy = TierPolicy::BasicOnly;
        let basic = wb_core::run_wasm(&spec).expect("runs");
        spec.tier_policy = TierPolicy::OptimizingOnly;
        let opt = wb_core::run_wasm(&spec).expect("runs");
        (basic.time.0 / default.time.0, opt.time.0 / default.time.0)
    });
}

/// Figs 12/13 / Table 8: the six-environment sweep for one benchmark.
fn bench_environments() {
    let durbin = wb_benchmarks::suite::find("durbin").expect("durbin");
    Bench::group("fig12_13_table8").run("six_envs", || {
        let mut total = 0.0;
        for env in Environment::all_six() {
            let mut spec = wb_core::WasmSpec::new(durbin.source);
            spec.defines = durbin.defines(InputSize::S);
            spec.env = env;
            total += wb_core::run_wasm(&spec).expect("runs").time.0;
        }
        total
    });
}

/// Table 9: a manual-JS row.
fn bench_manual_js() {
    let manual = wb_benchmarks::manual_js::all_manual();
    let sha = manual
        .iter()
        .find(|m| m.name == "SHA (W3C)")
        .expect("SHA (W3C)");
    let src = sha.full_source();
    Bench::group("table9").run("sha_w3c", || {
        let spec = wb_core::JsSpec::new(&src);
        wb_core::run_manual_js(&spec).expect("runs").time
    });
}

/// Tables 10/12: the application drivers.
fn bench_apps() {
    let env = Environment::desktop_chrome();
    let g = Bench::group("table10_table12");
    g.run("longjs_mul_pair", || {
        let w = apps::longjs_wasm(LongOp::Multiplication, env).expect("wasm");
        let j = apps::longjs_js(LongOp::Multiplication, env).expect("js");
        (w.arith.total(), j.arith.total())
    });
    g.run("hyphen_en_pair", || {
        let w = apps::hyphen_wasm(wb_benchmarks::apps::hyphen::Lang::EnUs, env).expect("wasm");
        let j = apps::hyphen_js(wb_benchmarks::apps::hyphen::Lang::EnUs, env).expect("js");
        w.time.0 / j.time.0
    });
    g.run("ctxswitch_microbench", || {
        apps::context_switch_bench(env, 100).expect("runs")
    });
}

/// §4.2.2: the Cheerp/Emscripten pair on the representative slice.
fn bench_compilers() {
    let reps = representative_benchmarks();
    Bench::group("compilers_4_2_2").run("cheerp_vs_emscripten", || {
        let bench = &reps[0];
        let cheerp = wasm_once(bench, InputSize::XS, OptLevel::O2);
        let mut spec = wb_core::WasmSpec::new(bench.source);
        spec.defines = bench.defines(InputSize::XS);
        spec.toolchain = wb_env::Toolchain::Emscripten;
        let emscripten = wb_core::run_wasm(&spec).expect("runs");
        black_box(cheerp.time.0 / emscripten.time.0)
    });
}

fn main() {
    bench_opt_levels();
    bench_input_sizes();
    bench_jit_configs();
    bench_environments();
    bench_manual_js();
    bench_apps();
    bench_compilers();
}
