//! A minimal wall-clock timing harness (std-only replacement for an
//! external bench framework). Each case warms up once, then runs until a
//! time budget or iteration cap is reached, and prints min/mean per
//! iteration in a stable single-line format:
//!
//! ```text
//! bench wasm/decode ... iters=412 min=41.2us mean=44.8us
//! ```

use std::time::{Duration, Instant};

/// Per-iteration time budget control for [`Bench::run`].
const TARGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u32 = 1_000;

/// A named group of benchmark cases, printed as `group/case`.
pub struct Bench {
    group: String,
}

impl Bench {
    /// Start a group with the given name.
    pub fn group(name: &str) -> Self {
        Bench {
            group: name.to_string(),
        }
    }

    /// Time one case. The closure's return value is consumed via
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn run<T>(&self, case: &str, mut f: impl FnMut() -> T) {
        // Warm-up: one untimed call (fills caches, faults pages).
        std::hint::black_box(f());
        let mut iters = 0u32;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        while total < TARGET && iters < MAX_ITERS {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            total += dt;
            if dt < min {
                min = dt;
            }
            iters += 1;
        }
        let mean = total / iters.max(1);
        println!(
            "bench {}/{} ... iters={} min={} mean={}",
            self.group,
            case,
            iters,
            fmt_duration(min),
            fmt_duration(mean)
        );
    }
}

/// Human-readable duration with ns/us/ms/s autoscaling.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
