//! # wb-bench — wall-clock benchmarks (std-only)
//!
//! Two benchmark families, both plain `harness = false` programs driven
//! by the small [`timing`] module (no external bench framework, so the
//! workspace builds offline):
//!
//! * **Simulator hot paths** (`benches/simulator.rs`): wall-clock
//!   performance of the substrates themselves — Wasm decode/validate/
//!   interpret, MiniJS parse/compile/run, MiniC compilation, GC.
//! * **Experiment regeneration** (`benches/experiments.rs`): one group
//!   per paper table/figure, timing the virtual-measurement pipeline
//!   that regenerates each artifact (on reduced grids so `cargo bench`
//!   stays tractable). The *virtual* numbers the study reports come from
//!   the `wb-harness` binaries; these benches track the cost of producing
//!   them.
//!
//! Shared helpers live here so both bench files stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use wb_benchmarks::{Benchmark, InputSize};
use wb_core::{run_compiled_js, run_native, run_wasm, JsSpec, Measurement, WasmSpec};
use wb_minic::OptLevel;

/// A small representative slice of the corpus (one per category family),
/// used by the per-experiment regeneration benches.
pub fn representative_benchmarks() -> Vec<Benchmark> {
    [
        "gemm",
        "jacobi-2d",
        "durbin",
        "floyd-warshall",
        "AES",
        "DFADD",
        "SHA",
    ]
    .iter()
    .map(|n| wb_benchmarks::suite::find(n).expect("representative benchmark exists"))
    .collect()
}

/// Run one benchmark's Wasm build at a size/level (bench helper).
pub fn wasm_once(b: &Benchmark, size: InputSize, level: OptLevel) -> Measurement {
    let mut spec = WasmSpec::new(b.source);
    spec.defines = b.defines(size);
    spec.level = level;
    run_wasm(&spec).expect("bench wasm run")
}

/// Run one benchmark's JS build at a size/level (bench helper).
pub fn js_once(b: &Benchmark, size: InputSize, level: OptLevel) -> Measurement {
    let mut spec = JsSpec::new(b.source);
    spec.defines = b.defines(size);
    spec.level = level;
    run_compiled_js(&spec).expect("bench js run")
}

/// Run one benchmark's native build at a size/level (bench helper).
pub fn native_once(b: &Benchmark, size: InputSize, level: OptLevel) -> Measurement {
    run_native(b.source, &b.defines(size), level, "bench_main").expect("bench native run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_resolve_and_run() {
        let reps = representative_benchmarks();
        assert_eq!(reps.len(), 7);
        let m = wasm_once(&reps[0], InputSize::XS, OptLevel::O2);
        assert!(!m.output.is_empty());
    }
}
