//! Plain-text table rendering (the harness binaries print paper-style
//! rows) and CSV export.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (converted to strings by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio like the paper: `0.88x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format milliseconds like Table 8/9: `65.23`.
pub fn millis(ns: wb_env::Nanos) -> String {
    format!("{:.3}", ns.as_millis())
}

/// Format kilobytes like Table 4: `2,001.54` → we print `2001.5`.
pub fn kilobytes(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["gemm".into(), "1.00x".into()]);
        t.row(vec!["floyd-warshall".into(), "0.88x".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("floyd-warshall  0.88x"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(0.876), "0.88x");
        assert_eq!(kilobytes(2048), "2.0");
        assert_eq!(millis(wb_env::Nanos::from_millis(65.234)), "65.234");
    }
}
