//! # wb-core — the measurement pipeline
//!
//! The paper's methodology (Fig 2) as a library:
//!
//! 1. **Source-code transformation** — performed inside `wb-minic`'s
//!    frontend (§3.1);
//! 2. **Compilation to Wasm/JS** — [`measure::run_wasm`] /
//!    [`measure::run_compiled_js`] drive the Cheerp/Emscripten profiles
//!    at any `-O` level with dataset `-D` defines (§3.2);
//! 3. **Deployment instrumentation** — the simulated page loads the
//!    artifact, instantiates it, and brackets execution with
//!    `performance.now()`-equivalent virtual timers (§3.3);
//! 4. **Data collection** — every run yields a [`measure::Measurement`]:
//!    execution time (with load/compile/exec/GC/grow/context-switch
//!    attribution), DevTools-model memory, code size, instruction counts
//!    and the Table 12 arithmetic profile (§3.4).
//!
//! On top sit [`stats`] (geometric means, five-number summaries, the
//! speedup/slowdown split of Table 3), [`report`] (aligned text tables +
//! CSV), and [`apps`] (the Long.js / Hyphenopoly / FFmpeg drivers,
//! including the WebWorker-pool model and the §4.5 context-switch
//! microbenchmark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod artifacts;
pub mod host;
pub mod measure;
pub mod report;
pub mod stats;

pub use artifacts::{ArtifactCache, ArtifactKey, ArtifactKind, CacheStats};
pub use measure::{
    run_compiled_js, run_compiled_js_with, run_manual_js, run_native, run_native_with, run_wasm,
    run_wasm_with, try_run_compiled_js_with, try_run_manual_js, try_run_native_with,
    try_run_wasm_with, JsSpec, Measurement, RunError, RunFailure, TrapKind, WasmSpec,
};
