//! Drivers for the real-world application analogues (§4.1.3, Table 10)
//! and the §4.5 JS↔Wasm context-switch microbenchmark.

use crate::host::standard_imports;
use crate::measure::{reported_wasm_memory, Measurement, RunError};
use std::collections::HashMap;
use wb_benchmarks::apps::{ffmpeg, hyphen, longjs};
use wb_env::{calibration, Environment, JitMode, Nanos, TierPolicy, Toolchain, VirtualClock};
use wb_jsvm::{JsValue, JsVm, JsVmConfig};
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{Instance, Value, WasmVmConfig};

/// Per-worker spawn + marshalling overhead in the WebWorker pool model
/// (worker creation, `postMessage` of the stripe boundaries).
pub const WORKER_SPAWN: Nanos = Nanos(300_000.0); // 0.3 ms

/// Run one Long.js operation on the Wasm implementation (hand-written
/// i64 module, like upstream `wasm.wat`): the driver loops in "JS",
/// crossing the boundary for every operation with the operands split into
/// (hi, lo) i32 pairs, exactly as Long.js does.
pub fn longjs_wasm(op: longjs::LongOp, env: Environment) -> Result<Measurement, RunError> {
    let module = longjs::wasm_module();
    let bytes = wb_wasm::encode_module(&module);
    let profile = env.profile();
    let config = WasmVmConfig::for_env(&profile); // hand-written: no toolchain overhead
    let mut inst = Instance::instantiate(&bytes, config, HashMap::new())?;
    let (a, b) = op.operands();
    let (a_hi, a_lo) = ((a >> 32) as i32, a as i32);
    let (b_hi, b_lo) = ((b >> 32) as i32, b as i32);
    let mut acc: i32 = 0;
    for _ in 0..longjs::ITERATIONS {
        let r = inst.invoke(
            op.func(),
            &[
                Value::I32(a_hi),
                Value::I32(a_lo),
                Value::I32(b_hi),
                Value::I32(b_lo),
            ],
        )?;
        if let Some(Value::I32(lo)) = r {
            acc |= lo;
        }
    }
    let report = inst.report();
    let mut output = inst.output.clone();
    output.push(acc.to_string());
    Ok(Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: reported_wasm_memory(env, report.memory.linear_bytes),
        code_size: bytes.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output,
        context_switches: report.context_switches,
    })
}

/// Run one Long.js operation on the JS implementation (16-bit limb
/// library, like upstream `long.js`).
pub fn longjs_js(op: longjs::LongOp, env: Environment) -> Result<Measurement, RunError> {
    let profile = env.profile();
    let mut vm = JsVm::new(JsVmConfig::for_env(&profile));
    vm.load(longjs::JS_SOURCE)?;
    let (a, b) = op.operands();
    let r = vm.call(
        op.func(),
        &[
            JsValue::Num(longjs::ITERATIONS as f64),
            JsValue::Num(a as f64),
            JsValue::Num(b as f64),
        ],
    )?;
    let report = vm.report();
    let mut output = vm.output.clone();
    if let JsValue::Num(v) = r {
        output.push(format!("{}", v as i64));
    }
    Ok(Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: profile.js.baseline_memory_bytes + report.heap.peak_live_bytes,
        code_size: longjs::JS_SOURCE.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output,
        context_switches: 0,
    })
}

/// Hyphenopoly, Wasm build (MiniC → Cheerp-profile Wasm).
pub fn hyphen_wasm(lang: hyphen::Lang, env: Environment) -> Result<Measurement, RunError> {
    let spec = crate::measure::WasmSpec {
        source: hyphen::C_SOURCE,
        defines: vec![
            ("TEXTLEN".into(), hyphen::TEXT_BYTES.to_string()),
            ("LANG".into(), lang.define().to_string()),
        ],
        level: OptLevel::O2,
        toolchain: Toolchain::Cheerp,
        env,
        tier_policy: TierPolicy::Default,
        heap_limit: Some(256 << 20),
        reference_exec: false,
        limits: wb_env::ResourceLimits::default(),
        entry: "bench_main",
    };
    crate::measure::run_wasm(&spec)
}

/// Hyphenopoly, hand-written JS build.
pub fn hyphen_js(lang: hyphen::Lang, env: Environment) -> Result<Measurement, RunError> {
    let spec = crate::measure::JsSpec {
        source: hyphen::JS_SOURCE,
        defines: vec![],
        level: OptLevel::O2,
        toolchain: Toolchain::Cheerp,
        env,
        jit: JitMode::Enabled,
        reference_exec: false,
        limits: wb_env::ResourceLimits::default(),
        trap_checks: false,
        entry: match lang {
            hyphen::Lang::EnUs => "bench_main",
            hyphen::Lang::Fr => "bench_fr",
        },
    };
    crate::measure::run_manual_js(&spec)
}

/// FFmpeg analogue, Wasm build: the stream is striped across
/// [`ffmpeg::WORKER_COUNT`] simulated WebWorkers, each running its own
/// instance; wall time = max(worker time) + spawn overhead (ffmpeg.wasm's
/// pthread-pool structure).
pub fn ffmpeg_wasm(env: Environment) -> Result<Measurement, RunError> {
    let stripe = ffmpeg::STREAM_BYTES / ffmpeg::WORKER_COUNT;
    let mut worker_times = Vec::new();
    let mut output = Vec::new();
    let mut total_counts = wb_env::OpCounts::new();
    let mut arith = wb_env::ArithCounts::default();
    let mut memory = 0u64;
    let mut code_size = 0u64;
    let mut switches = 0u64;
    for w in 0..ffmpeg::WORKER_COUNT {
        let compiler = Compiler::cheerp()
            .define("STREAMLEN", stripe)
            .define("CHUNK", ffmpeg::CHUNK_BYTES)
            .define("SEED0", 20260706 + w);
        let out = compiler.compile_wasm(ffmpeg::C_SOURCE)?;
        let bytes = wb_wasm::encode_module(&out.module);
        let profile = env.profile();
        let mut config = WasmVmConfig::for_env(&profile);
        config.exec_overhead = calibration::toolchain_exec_overhead(Toolchain::Cheerp);
        let mut inst = Instance::instantiate(&bytes, config, standard_imports(out.strings))?;
        inst.invoke("bench_main", &[])?;
        let report = inst.report();
        worker_times.push(report.total);
        output.extend(inst.output.clone());
        total_counts = total_counts.merged(&report.counts);
        arith = merge_arith(arith, report.arith);
        memory += reported_wasm_memory(env, report.memory.linear_bytes);
        code_size = bytes.len() as u64;
        switches += report.context_switches;
    }
    let max_worker = worker_times
        .iter()
        .fold(Nanos::ZERO, |acc, t| if t.0 > acc.0 { *t } else { acc });
    let time = max_worker + WORKER_SPAWN * ffmpeg::WORKER_COUNT as f64;
    let mut clock = VirtualClock::new();
    clock.advance(time, wb_env::TimeBucket::Exec);
    Ok(Measurement {
        time,
        clock,
        memory_bytes: memory, // all workers' instances are resident
        code_size,
        counts: total_counts,
        arith,
        output,
        context_switches: switches,
    })
}

/// FFmpeg analogue, JS build: single-threaded (node-ffmpeg has no
/// parallelization).
pub fn ffmpeg_js(env: Environment) -> Result<Measurement, RunError> {
    let spec = crate::measure::JsSpec {
        source: ffmpeg::JS_SOURCE,
        defines: vec![],
        level: OptLevel::O2,
        toolchain: Toolchain::Cheerp,
        env,
        jit: JitMode::Enabled,
        reference_exec: false,
        limits: wb_env::ResourceLimits::default(),
        trap_checks: false,
        entry: "bench_main",
    };
    crate::measure::run_manual_js(&spec)
}

fn merge_arith(a: wb_env::ArithCounts, b: wb_env::ArithCounts) -> wb_env::ArithCounts {
    wb_env::ArithCounts {
        add: a.add + b.add,
        mul: a.mul + b.mul,
        div: a.div + b.div,
        rem: a.rem + b.rem,
        shift: a.shift + b.shift,
        and: a.and + b.and,
        or: a.or + b.or,
    }
}

/// The §4.5 context-switch microbenchmark: ping-pong across the JS↔Wasm
/// boundary `calls` times and report the boundary time per call.
pub fn context_switch_bench(env: Environment, calls: u32) -> Result<Nanos, RunError> {
    let mut mb = wb_wasm::ModuleBuilder::new();
    let mut f = mb.func("nop", vec![], vec![]);
    f.op(wb_wasm::Instr::Nop).done();
    mb.finish_func(f, true);
    let bytes = wb_wasm::encode_module(&mb.build());
    let profile = env.profile();
    let mut inst = Instance::instantiate(&bytes, WasmVmConfig::for_env(&profile), HashMap::new())?;
    for _ in 0..calls {
        inst.invoke("nop", &[])?;
    }
    let report = inst.report();
    Ok(Nanos(report.clock.context_switch_time.0 / calls as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_benchmarks::apps::longjs::LongOp;
    use wb_env::{Browser, Platform};

    #[test]
    fn longjs_wasm_beats_js_and_uses_fewer_ops() {
        let env = Environment::desktop_chrome();
        for op in LongOp::ALL {
            let w = longjs_wasm(op, env).unwrap();
            let j = longjs_js(op, env).unwrap();
            // Table 10: Wasm faster on every Long.js operation.
            assert!(
                w.time.0 < j.time.0,
                "{}: wasm {} vs js {}",
                op.name(),
                w.time,
                j.time
            );
            // Table 12: JS executes many times more arithmetic ops.
            assert!(
                j.arith.total() > 4 * w.arith.total(),
                "{}: js {} vs wasm {}",
                op.name(),
                j.arith.total(),
                w.arith.total()
            );
        }
    }

    #[test]
    fn hyphen_versions_agree_and_are_close() {
        let env = Environment::desktop_chrome();
        let w = hyphen_wasm(wb_benchmarks::apps::hyphen::Lang::EnUs, env).unwrap();
        let j = hyphen_js(wb_benchmarks::apps::hyphen::Lang::EnUs, env).unwrap();
        assert_eq!(w.output, j.output, "same hyphenation counts");
        let ratio = w.time.0 / j.time.0;
        // Table 10: ratio ≈ 0.94 (close, Wasm marginally faster).
        assert!(ratio < 1.1, "ratio {ratio}");
        assert!(ratio > 0.3, "ratio {ratio}");
    }

    #[test]
    fn ffmpeg_wasm_parallelism_wins_big() {
        let env = Environment::desktop_chrome();
        let w = ffmpeg_wasm(env).unwrap();
        let j = ffmpeg_js(env).unwrap();
        let ratio = w.time.0 / j.time.0;
        // Table 10: ratio ≈ 0.275 (4 workers).
        assert!(ratio < 0.6, "ratio {ratio}");
    }

    #[test]
    fn firefox_context_switch_is_far_cheaper() {
        let chrome = context_switch_bench(Environment::desktop_chrome(), 50).unwrap();
        let firefox =
            context_switch_bench(Environment::new(Browser::Firefox, Platform::Desktop), 50)
                .unwrap();
        let ratio = firefox.0 / chrome.0;
        // §4.5: Firefox ≈ 0.13× of Chrome. The Firefox Wasm speed factor
        // (0.61×) also scales its switch cost, so allow a band.
        assert!(ratio < 0.2, "ratio {ratio}");
    }
}
