//! Content-keyed compile-artifact cache — the "compile once" half of the
//! grid engine.
//!
//! The study grid re-runs identical MiniC compilations for every cell
//! that shares `(source, defines, level, toolchain, heap limit)`: the six
//! environments of Fig 12/13 differ only at *run* time, the tier policies
//! of Table 7 only at *instantiation* time. This module memoizes the
//! compile outputs (and, for Wasm, the decode+validate+side-table
//! preparation) under a 128-bit content key so each distinct artifact is
//! built exactly once per process, across threads.
//!
//! **Invariant: caching may never change virtual numbers.** A cached run
//! replays the same virtual load/compile charges as an uncached one
//! ([`wb_wasm_vm::Instance::instantiate_prepared`]); only wall-clock work
//! is skipped. The cached Wasm preparation is built from the
//! encode→decode roundtrip of the module, exactly like the uncached
//! path, so execution is bit-identical too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use wb_env::Toolchain;
use wb_minic::backend::native::NativeProgram;
use wb_minic::OptLevel;
use wb_wasm_vm::PreparedModule;

/// 128-bit FNV-1a content hash identifying one compile artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(pub u128);

/// Which backend an artifact was compiled for (part of the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// MiniC → Wasm binary (+ prepared module).
    Wasm,
    /// MiniC → MiniJS source.
    Js,
    /// MiniC → native evaluator program.
    Native,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
        // Field separator so concatenations can't collide ("ab","c" vs
        // "a","bc").
        self.0 ^= 0x1f;
        self.0 = self.0.wrapping_mul(FNV128_PRIME);
    }
}

impl ArtifactKey {
    /// Key for one compile configuration. Everything that can change the
    /// compile output is hashed; everything that only affects run time
    /// (environment, tier policy, JIT mode, entry point) deliberately is
    /// not, which is where the grid's cache hits come from.
    pub fn compute(
        kind: ArtifactKind,
        source: &str,
        defines: &[(String, String)],
        level: OptLevel,
        toolchain: Toolchain,
        heap_limit: Option<u64>,
        trap_checks: bool,
    ) -> ArtifactKey {
        let mut h = Fnv128::new();
        h.write(&[match kind {
            ArtifactKind::Wasm => 1u8,
            ArtifactKind::Js => 2,
            ArtifactKind::Native => 3,
        }]);
        h.write(source.as_bytes());
        h.write(&(defines.len() as u64).to_le_bytes());
        for (k, v) in defines {
            h.write(k.as_bytes());
            h.write(v.as_bytes());
        }
        h.write(level.name().as_bytes());
        h.write(format!("{toolchain:?}").as_bytes());
        match heap_limit {
            Some(v) => {
                h.write(&[1]);
                h.write(&v.to_le_bytes());
            }
            None => h.write(&[0]),
        }
        // Trap-checks builds emit different JS (checked div / bounds
        // helpers), so they must never share a slot with plain builds.
        h.write(&[trap_checks as u8]);
        ArtifactKey(h.0)
    }
}

/// A cached Wasm compile: the encoded binary, the `print_str` table and
/// the shared decode+validate+side-table preparation.
pub struct CachedWasm {
    /// Encoded module binary (the Fig 5 code-size metric measures this).
    pub bytes: Vec<u8>,
    /// Host string table for `standard_imports`.
    pub strings: Vec<String>,
    /// Prepared module, built from `decode(encode(module))` exactly like
    /// the uncached instantiate path.
    pub prepared: Arc<PreparedModule>,
}

/// A cached JS compile.
pub struct CachedJs {
    /// Generated MiniJS source.
    pub source: String,
}

/// A cached native compile.
pub struct CachedNative {
    /// The immutable native program (its `run` takes `&self`).
    pub prog: NativeProgram,
}

/// One cache slot. The per-key mutex serializes *compilation* of that key
/// across workers — the second worker blocks until the first finishes,
/// then takes the hit — while the outer map lock is only held long enough
/// to fetch the slot.
struct Slot<T> {
    filled: Mutex<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            filled: Mutex::new(None),
        }
    }
}

struct KeyedCache<T> {
    slots: Mutex<HashMap<ArtifactKey, Arc<Slot<T>>>>,
}

impl<T> KeyedCache<T> {
    fn new() -> Self {
        KeyedCache {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Get-or-build: returns `(artifact, was_hit)`.
    fn get_or_build<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        let slot = {
            let mut map = self.slots.lock().expect("artifact cache poisoned");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Slot::new())))
        };
        let mut filled = slot.filled.lock().expect("artifact slot poisoned");
        if let Some(v) = filled.as_ref() {
            return Ok((Arc::clone(v), true));
        }
        let built = Arc::new(build()?);
        *filled = Some(Arc::clone(&built));
        Ok((built, false))
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Artifact bytes we did not have to re-produce (sum of hit artifact
    /// sizes).
    pub bytes_saved: u64,
}

impl CacheStats {
    /// Hits / (hits + misses), or 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe, content-keyed compile-artifact cache with hit/miss
/// accounting. One instance is usually shared per process via
/// [`ArtifactCache::global`].
pub struct ArtifactCache {
    wasm: KeyedCache<CachedWasm>,
    js: KeyedCache<CachedJs>,
    native: KeyedCache<CachedNative>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_saved: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache {
            wasm: KeyedCache::new(),
            js: KeyedCache::new(),
            native: KeyedCache::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
        }
    }

    /// The process-wide cache all harness binaries share.
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::new)
    }

    fn note(&self, hit: bool, artifact_bytes: u64) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.bytes_saved
                .fetch_add(artifact_bytes, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Get or build the Wasm artifact for `key`.
    pub fn wasm<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<CachedWasm, E>,
    ) -> Result<Arc<CachedWasm>, E> {
        let (v, hit) = self.wasm.get_or_build(key, build)?;
        self.note(hit, v.bytes.len() as u64);
        Ok(v)
    }

    /// Get or build the JS artifact for `key`.
    pub fn js<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<CachedJs, E>,
    ) -> Result<Arc<CachedJs>, E> {
        let (v, hit) = self.js.get_or_build(key, build)?;
        self.note(hit, v.source.len() as u64);
        Ok(v)
    }

    /// Get or build the native artifact for `key`.
    pub fn native<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<CachedNative, E>,
    ) -> Result<Arc<CachedNative>, E> {
        let (v, hit) = self.native.get_or_build(key, build)?;
        self.note(hit, v.prog.code_size());
        Ok(v)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: &str, defines: &[(&str, &str)], level: OptLevel, tc: Toolchain) -> ArtifactKey {
        let defines: Vec<(String, String)> = defines
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        ArtifactKey::compute(
            ArtifactKind::Wasm,
            source,
            &defines,
            level,
            tc,
            Some(1 << 20),
            false,
        )
    }

    #[test]
    fn distinct_configurations_get_distinct_keys() {
        let base = key("int x;", &[("N", "10")], OptLevel::O2, Toolchain::Cheerp);
        assert_ne!(
            base,
            key("int y;", &[("N", "10")], OptLevel::O2, Toolchain::Cheerp),
            "source"
        );
        assert_ne!(
            base,
            key("int x;", &[("N", "11")], OptLevel::O2, Toolchain::Cheerp),
            "define value"
        );
        assert_ne!(
            base,
            key("int x;", &[("M", "10")], OptLevel::O2, Toolchain::Cheerp),
            "define name"
        );
        assert_ne!(
            base,
            key("int x;", &[], OptLevel::O2, Toolchain::Cheerp),
            "define count"
        );
        assert_ne!(
            base,
            key("int x;", &[("N", "10")], OptLevel::O0, Toolchain::Cheerp),
            "level"
        );
        assert_ne!(
            base,
            key(
                "int x;",
                &[("N", "10")],
                OptLevel::O2,
                Toolchain::Emscripten
            ),
            "toolchain"
        );
    }

    #[test]
    fn kind_heap_limit_and_boundaries_are_part_of_the_key() {
        let mk = |kind, heap| {
            ArtifactKey::compute(
                kind,
                "int x;",
                &[],
                OptLevel::O2,
                Toolchain::Cheerp,
                heap,
                false,
            )
        };
        let trapped = ArtifactKey::compute(
            ArtifactKind::Js,
            "int x;",
            &[],
            OptLevel::O2,
            Toolchain::Cheerp,
            None,
            true,
        );
        assert_ne!(mk(ArtifactKind::Js, None), trapped, "trap-checks flag");
        assert_ne!(mk(ArtifactKind::Wasm, None), mk(ArtifactKind::Js, None));
        assert_ne!(mk(ArtifactKind::Js, None), mk(ArtifactKind::Native, None));
        assert_ne!(
            mk(ArtifactKind::Wasm, None),
            mk(ArtifactKind::Wasm, Some(0)),
            "heap limit None vs Some(0)"
        );
        assert_ne!(
            mk(ArtifactKind::Wasm, Some(1 << 20)),
            mk(ArtifactKind::Wasm, Some(1 << 21))
        );
        // Field-boundary shifts must not collide.
        let a = ArtifactKey::compute(
            ArtifactKind::Wasm,
            "ab",
            &[("c".into(), "d".into())],
            OptLevel::O2,
            Toolchain::Cheerp,
            None,
            false,
        );
        let b = ArtifactKey::compute(
            ArtifactKind::Wasm,
            "a",
            &[("bc".into(), "d".into())],
            OptLevel::O2,
            Toolchain::Cheerp,
            None,
            false,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn same_configuration_is_stable() {
        let a = key("int x;", &[("N", "10")], OptLevel::O2, Toolchain::Cheerp);
        let b = key("int x;", &[("N", "10")], OptLevel::O2, Toolchain::Cheerp);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_counts_hits_misses_and_bytes_saved() {
        let cache = ArtifactCache::new();
        let k = key("int x;", &[], OptLevel::O2, Toolchain::Cheerp);
        let build = || -> Result<CachedJs, ()> {
            Ok(CachedJs {
                source: "function f() {}".to_string(),
            })
        };
        let first = cache.js(k, build).unwrap();
        let again = cache.js(k, build).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_saved, first.source.len() as u64);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let k = key("bad", &[], OptLevel::O2, Toolchain::Cheerp);
        let r: Result<_, String> = cache.js(k, || Err("boom".to_string()));
        assert!(r.is_err());
        // A later successful build fills the slot.
        let ok = cache.js(k, || -> Result<CachedJs, String> {
            Ok(CachedJs { source: "x".into() })
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn concurrent_builders_compile_once() {
        let cache = Arc::new(ArtifactCache::new());
        let k = key("int y;", &[], OptLevel::O2, Toolchain::Cheerp);
        let built = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let built = Arc::clone(&built);
                scope.spawn(move || {
                    cache
                        .js(k, || -> Result<CachedJs, ()> {
                            built.fetch_add(1, Ordering::Relaxed);
                            Ok(CachedJs { source: "f".into() })
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1, "one compile total");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }
}
