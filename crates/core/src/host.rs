//! Standard host (JavaScript-side) imports for compiled Wasm modules:
//! the `print_*` runtime and the `Math` transcendentals the Cheerp
//! profile imports instead of compiling libm (§3.2).

use std::collections::HashMap;
use wb_wasm_vm::{HostCtx, HostFn, Value};

/// Canonical float formatting shared with the JS engine's `console.log`
/// and the native evaluator, so outputs compare byte-for-byte.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if v == v.trunc() && v.abs() < 1e21 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Build the standard import set. `strings` is the compiled module's
/// `print_str` table ([`wb_minic::WasmOutput::strings`]).
pub fn standard_imports(strings: Vec<String>) -> HashMap<String, HostFn> {
    let mut m: HashMap<String, HostFn> = HashMap::new();
    m.insert(
        "env.print_i32".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i32().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_i64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i64().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_f64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(fmt_f64(args[0].as_f64()));
            Ok(None)
        }),
    );
    m.insert(
        "env.print_str".into(),
        Box::new(move |ctx: &mut HostCtx, args: &[Value]| {
            let id = args[0].as_i32() as usize;
            ctx.output
                .push(strings.get(id).cloned().unwrap_or_default());
            Ok(None)
        }),
    );
    for (name, f) in [
        ("math.exp", f64::exp as fn(f64) -> f64),
        ("math.log", f64::ln),
        ("math.sin", f64::sin),
        ("math.cos", f64::cos),
        ("math.tan", f64::tan),
        ("math.atan", f64::atan),
    ] {
        m.insert(
            name.into(),
            Box::new(move |_: &mut HostCtx, args: &[Value]| {
                Ok(Some(Value::F64(f(args[0].as_f64()))))
            }),
        );
    }
    m.insert(
        "math.pow".into(),
        Box::new(|_: &mut HostCtx, args: &[Value]| {
            Ok(Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))))
        }),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_matches_js_console_semantics() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-2.5), "-2.5");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn import_set_is_complete() {
        let m = standard_imports(vec![]);
        for key in [
            "env.print_i32",
            "env.print_i64",
            "env.print_f64",
            "env.print_str",
            "math.exp",
            "math.pow",
        ] {
            assert!(m.contains_key(key), "{key}");
        }
    }
}
