//! Run one program in one configuration and collect a [`Measurement`]
//! (§3.3–3.4): virtual execution time with attribution, DevTools-model
//! memory, code size, and instruction counts.

use crate::artifacts::{
    ArtifactCache, ArtifactKey, ArtifactKind, CachedJs, CachedNative, CachedWasm,
};
use crate::host::standard_imports;
use std::sync::Arc;
use wb_env::{
    calibration, ArithCounts, Environment, JitMode, Nanos, OpCounts, ResourceLimits, TierPolicy,
    Toolchain, VirtualClock,
};
use wb_jsvm::{JsError, JsVm, JsVmConfig};
use wb_minic::backend::native::NativeTrap;
use wb_minic::{CompileError, Compiler, OptLevel};
use wb_wasm_vm::{Instance, PreparedModule, Trap, WasmVmConfig};

/// Everything one run produces (§3.4's two metrics plus attribution).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Total virtual time between the instrumentation timers.
    pub time: Nanos,
    /// Attribution breakdown (load/compile/exec/GC/grow/context switch).
    pub clock: VirtualClock,
    /// Reported memory, bytes — engine baseline + language-model usage
    /// (Wasm: committed linear memory, never reclaimed; JS: live GC heap,
    /// typed-array backing stores external), matching DevTools semantics.
    pub memory_bytes: u64,
    /// Artifact size in bytes (Wasm binary / JS source / native estimate).
    pub code_size: u64,
    /// Retired operations by class.
    pub counts: OpCounts,
    /// Fine-grained arithmetic profile (Table 12).
    pub arith: ArithCounts,
    /// Program output (checksums), for cross-backend verification.
    pub output: Vec<String>,
    /// JS↔Wasm boundary crossings (Wasm runs only).
    pub context_switches: u64,
}

/// A failed run.
#[derive(Debug)]
pub enum RunError {
    /// Compilation failed.
    Compile(CompileError),
    /// The Wasm VM trapped.
    Trap(Trap),
    /// The JS engine raised.
    Js(wb_jsvm::JsError),
    /// The native evaluator trapped.
    Native(wb_minic::backend::native::NativeTrap),
    /// The worker executing the cell panicked; the payload is the panic
    /// message recovered at the isolation boundary
    /// (`catch_unwind` in the grid engine).
    Panic(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Trap(e) => write!(f, "wasm trap: {e}"),
            RunError::Js(e) => write!(f, "js error: {e}"),
            RunError::Native(e) => write!(f, "native trap: {e}"),
            RunError::Panic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Coarse, backend-independent classification of a failed run — the
/// vocabulary of the trap-parity tests and the grid's partial-results
/// CSV. Each backend reports faults in its own enum ([`Trap`],
/// [`JsError`], [`NativeTrap`]); `TrapKind` is the projection under
/// which equivalent faults compare equal across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Out-of-bounds memory / array / table access.
    OutOfBounds,
    /// `INT_MIN / -1` style integer overflow.
    IntegerOverflow,
    /// Call-stack depth limit exceeded.
    StackOverflow,
    /// Fuel (step budget, [`ResourceLimits::fuel`]) exhausted.
    FuelExhausted,
    /// Memory ceiling ([`ResourceLimits::max_memory_bytes`]) exceeded.
    MemoryLimit,
    /// Compilation (front end or backend) failed.
    Compile,
    /// A worker panicked (caught at the isolation boundary).
    Panic,
    /// Anything else: host errors, missing exports, unreachable, ….
    Other,
}

impl TrapKind {
    /// Stable kebab-case name, used in CSV annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            TrapKind::DivByZero => "div-by-zero",
            TrapKind::OutOfBounds => "out-of-bounds",
            TrapKind::IntegerOverflow => "integer-overflow",
            TrapKind::StackOverflow => "stack-overflow",
            TrapKind::FuelExhausted => "fuel-exhausted",
            TrapKind::MemoryLimit => "memory-limit",
            TrapKind::Compile => "compile-error",
            TrapKind::Panic => "panic",
            TrapKind::Other => "other",
        }
    }
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RunError {
    /// The backend-independent fault class. The trap-parity suite
    /// asserts that the same program faults with the same `TrapKind` on
    /// every backend that can express the fault.
    pub fn kind(&self) -> TrapKind {
        match self {
            RunError::Compile(_) => TrapKind::Compile,
            RunError::Panic(_) => TrapKind::Panic,
            RunError::Trap(t) => match t {
                Trap::DivByZero => TrapKind::DivByZero,
                Trap::MemoryOutOfBounds { .. } | Trap::TableOutOfBounds => TrapKind::OutOfBounds,
                Trap::IntegerOverflow => TrapKind::IntegerOverflow,
                Trap::StackOverflow => TrapKind::StackOverflow,
                Trap::StepBudgetExhausted => TrapKind::FuelExhausted,
                Trap::MemoryLimitExceeded { .. } => TrapKind::MemoryLimit,
                _ => TrapKind::Other,
            },
            RunError::Js(e) => match e {
                JsError::DivByZero => TrapKind::DivByZero,
                JsError::OutOfBounds { .. } => TrapKind::OutOfBounds,
                JsError::StackOverflow => TrapKind::StackOverflow,
                JsError::StepBudgetExhausted => TrapKind::FuelExhausted,
                JsError::MemoryLimitExceeded { .. } => TrapKind::MemoryLimit,
                JsError::Lex { .. } | JsError::Parse { .. } | JsError::Compile { .. } => {
                    TrapKind::Compile
                }
                _ => TrapKind::Other,
            },
            RunError::Native(e) => match e {
                NativeTrap::DivByZero => TrapKind::DivByZero,
                NativeTrap::OutOfBounds { .. } => TrapKind::OutOfBounds,
                NativeTrap::StackOverflow => TrapKind::StackOverflow,
                NativeTrap::StepBudget => TrapKind::FuelExhausted,
                NativeTrap::MemoryLimit { .. } => TrapKind::MemoryLimit,
                _ => TrapKind::Other,
            },
        }
    }
}

/// A failed run plus whatever was measured before the fault.
///
/// `error` says what went wrong; `partial` carries the virtual-cost
/// state the VM had accumulated up to the trap, when it got far enough
/// to have any (compile errors and panics report nothing). The grid's
/// `--keep-going` mode annotates failed cells from this.
#[derive(Debug)]
pub struct RunFailure {
    /// What went wrong.
    pub error: RunError,
    /// Measurement state at the point of failure, if the VM was running.
    pub partial: Option<Box<Measurement>>,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for RunFailure {}

impl From<RunError> for RunFailure {
    fn from(error: RunError) -> Self {
        RunFailure {
            error,
            partial: None,
        }
    }
}

impl From<CompileError> for RunFailure {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e).into()
    }
}

impl From<Trap> for RunFailure {
    fn from(e: Trap) -> Self {
        RunError::Trap(e).into()
    }
}

impl From<JsError> for RunFailure {
    fn from(e: JsError) -> Self {
        RunError::Js(e).into()
    }
}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<Trap> for RunError {
    fn from(e: Trap) -> Self {
        RunError::Trap(e)
    }
}

impl From<wb_jsvm::JsError> for RunError {
    fn from(e: wb_jsvm::JsError) -> Self {
        RunError::Js(e)
    }
}

/// Configuration of a Wasm run: compile `source` with the toolchain at
/// `level`, instantiate in `env`, call `entry`.
#[derive(Debug, Clone)]
pub struct WasmSpec<'a> {
    /// MiniC source.
    pub source: &'a str,
    /// Dataset `-D` defines (§3.2).
    pub defines: Vec<(String, String)>,
    /// Optimization level.
    pub level: OptLevel,
    /// Cheerp or Emscripten.
    pub toolchain: Toolchain,
    /// Browser × platform.
    pub env: Environment,
    /// Tier configuration (Table 11 flags).
    pub tier_policy: TierPolicy,
    /// `cheerp-linear-heap-size` override.
    pub heap_limit: Option<u64>,
    /// Run the VM's plain per-op interpreter instead of the fused
    /// micro-op engine (`--reference-exec`). Measurements are identical
    /// either way; this is the escape hatch that proves it.
    pub reference_exec: bool,
    /// Resource ceilings (fuel, memory, call depth). The default is
    /// unlimited fuel/memory, so default-limit runs are bit-identical to
    /// runs from before the limit layer existed — limits are *checked*
    /// on existing virtual-cost events, never charged.
    pub limits: ResourceLimits,
    /// Entry function.
    pub entry: &'a str,
}

impl<'a> WasmSpec<'a> {
    /// The study default: Cheerp, `-O2`, desktop Chrome, default tiers.
    pub fn new(source: &'a str) -> Self {
        WasmSpec {
            source,
            defines: Vec::new(),
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            tier_policy: TierPolicy::Default,
            heap_limit: Some(256 << 20),
            reference_exec: false,
            limits: ResourceLimits::default(),
            entry: "bench_main",
        }
    }
}

/// Configuration of a JS run.
#[derive(Debug, Clone)]
pub struct JsSpec<'a> {
    /// MiniC source (for [`run_compiled_js`]) or MiniJS source (for
    /// [`run_manual_js`]).
    pub source: &'a str,
    /// Dataset defines (compiled runs only).
    pub defines: Vec<(String, String)>,
    /// Optimization level (compiled runs only).
    pub level: OptLevel,
    /// Toolchain (compiled runs only).
    pub toolchain: Toolchain,
    /// Browser × platform.
    pub env: Environment,
    /// JIT enabled/disabled (`--no-opt`).
    pub jit: JitMode,
    /// Run without the fused-op overlay and inline caches
    /// (`--reference-exec`); measurement-invisible by construction.
    pub reference_exec: bool,
    /// Resource ceilings (fuel, live-heap memory, call depth); the
    /// default is unlimited fuel/memory, bit-identical to the pre-limit
    /// engine.
    pub limits: ResourceLimits,
    /// Compile with wasm-parity trap checks (checked integer division
    /// and typed-array bounds). Changes generated code — part of the
    /// artifact cache key — and exists for the trap-parity fixtures;
    /// study runs never set it.
    pub trap_checks: bool,
    /// Entry function.
    pub entry: &'a str,
}

impl<'a> JsSpec<'a> {
    /// The study default.
    pub fn new(source: &'a str) -> Self {
        JsSpec {
            source,
            defines: Vec::new(),
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            jit: JitMode::Enabled,
            reference_exec: false,
            limits: ResourceLimits::default(),
            trap_checks: false,
            entry: "bench_main",
        }
    }
}

fn compiler_for(
    defines: &[(String, String)],
    level: OptLevel,
    toolchain: Toolchain,
    heap: Option<u64>,
) -> Compiler {
    let mut c = Compiler::new(toolchain).opt_level(level);
    if let Some(h) = heap {
        c = c.heap_limit(h);
    }
    for (k, v) in defines {
        c = c.define(k, v.clone());
    }
    c
}

/// Reported Wasm memory: engine baseline + committed linear memory, with
/// the engine's large-heap over-commit slack (Table 6's Firefox XL
/// crossover).
pub fn reported_wasm_memory(env: Environment, linear_bytes: u64) -> u64 {
    let profile = env.profile();
    let slack_extra = if linear_bytes > calibration::GROW_SLACK_THRESHOLD_BYTES {
        ((linear_bytes - calibration::GROW_SLACK_THRESHOLD_BYTES) as f64
            * (profile.wasm_grow_slack - 1.0)) as u64
    } else {
        0
    };
    profile.wasm.baseline_memory_bytes + linear_bytes + slack_extra
}

/// Compile (or fetch from `cache`) the Wasm artifact for a spec. The
/// cached artifact goes through the same encode→decode→validate
/// roundtrip as [`Instance::instantiate`], so later execution over the
/// shared [`PreparedModule`] is bit-identical to the uncached path.
fn wasm_artifact(
    spec: &WasmSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Arc<CachedWasm>, RunFailure> {
    let build = || -> Result<CachedWasm, RunFailure> {
        let compiler = compiler_for(&spec.defines, spec.level, spec.toolchain, spec.heap_limit);
        let out = compiler.compile_wasm(spec.source)?;
        let bytes = wb_wasm::encode_module(&out.module);
        let module = wb_wasm::decode_module(&bytes).map_err(|e| Trap::Host {
            message: format!("decode failed: {e}"),
        })?;
        wb_wasm::validate(&module).map_err(|e| Trap::Host {
            message: format!("validation failed: {e}"),
        })?;
        Ok(CachedWasm {
            bytes,
            strings: out.strings,
            prepared: Arc::new(PreparedModule::new(module)),
        })
    };
    match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Wasm,
                spec.source,
                &spec.defines,
                spec.level,
                spec.toolchain,
                spec.heap_limit,
                false,
            );
            cache.wasm(key, build)
        }
        None => build().map(Arc::new),
    }
}

/// Run a compiled-to-Wasm benchmark end to end.
pub fn run_wasm(spec: &WasmSpec<'_>) -> Result<Measurement, RunError> {
    run_wasm_with(spec, None)
}

/// [`run_wasm`], optionally sharing compile artifacts through `cache`.
/// Caching skips real decode/validate/side-table work but replays the
/// same *virtual* load/compile charges, so the Measurement is
/// bit-identical either way.
pub fn run_wasm_with(
    spec: &WasmSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    try_run_wasm_with(spec, cache).map_err(|f| f.error)
}

/// [`run_wasm_with`], but a failed run also reports the measurement
/// state at the point of failure (see [`RunFailure`]).
pub fn try_run_wasm_with(
    spec: &WasmSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunFailure> {
    let artifact = wasm_artifact(spec, cache)?;
    let profile = spec.env.profile();
    let mut config = WasmVmConfig::for_env(&profile);
    config.tier_policy = spec.tier_policy;
    config.reference_exec = spec.reference_exec;
    config.exec_overhead = calibration::toolchain_exec_overhead(spec.toolchain);
    config.limits = spec.limits;

    // Deployment (§3.3): the page fetches the binary and instantiates it —
    // decode + validate + baseline compile are charged exactly as
    // `instantiate` would, against the pre-decoded module.
    let mut inst = Instance::instantiate_prepared(
        Arc::clone(&artifact.prepared),
        artifact.bytes.len(),
        config,
        standard_imports(artifact.strings.clone()),
    )?;
    let run = inst.invoke(spec.entry, &[]);
    let report = inst.report();
    let measurement = Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: reported_wasm_memory(spec.env, report.memory.linear_bytes),
        code_size: artifact.bytes.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output: inst.output.clone(),
        context_switches: report.context_switches,
    };
    match run {
        Ok(_) => Ok(measurement),
        Err(trap) => Err(RunFailure {
            error: RunError::Trap(trap),
            partial: Some(Box::new(measurement)),
        }),
    }
}

/// Run a compiled-to-JavaScript benchmark end to end.
pub fn run_compiled_js(spec: &JsSpec<'_>) -> Result<Measurement, RunError> {
    run_compiled_js_with(spec, None)
}

/// [`run_compiled_js`], optionally sharing the generated JS source
/// through `cache`.
pub fn run_compiled_js_with(
    spec: &JsSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    try_run_compiled_js_with(spec, cache).map_err(|f| f.error)
}

/// [`run_compiled_js_with`], but a failed run also reports the
/// measurement state at the point of failure (see [`RunFailure`]).
pub fn try_run_compiled_js_with(
    spec: &JsSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunFailure> {
    let build = || -> Result<CachedJs, RunFailure> {
        let compiler = compiler_for(&spec.defines, spec.level, spec.toolchain, None)
            .trap_checks(spec.trap_checks);
        let out = compiler.compile_js(spec.source)?;
        Ok(CachedJs { source: out.source })
    };
    let artifact = match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Js,
                spec.source,
                &spec.defines,
                spec.level,
                spec.toolchain,
                None,
                spec.trap_checks,
            );
            cache.js(key, build)?
        }
        None => Arc::new(build()?),
    };
    run_js_source(&artifact.source, spec)
}

/// Run a manually-written MiniJS program (§4.1.2).
pub fn run_manual_js(spec: &JsSpec<'_>) -> Result<Measurement, RunError> {
    try_run_manual_js(spec).map_err(|f| f.error)
}

/// [`run_manual_js`], but a failed run also reports the measurement
/// state at the point of failure (see [`RunFailure`]).
pub fn try_run_manual_js(spec: &JsSpec<'_>) -> Result<Measurement, RunFailure> {
    run_js_source(spec.source, spec)
}

fn run_js_source(js_source: &str, spec: &JsSpec<'_>) -> Result<Measurement, RunFailure> {
    let profile = spec.env.profile();
    let mut config = JsVmConfig::for_env(&profile);
    config.jit = spec.jit;
    config.reference_exec = spec.reference_exec;
    config.limits = spec.limits;
    let mut vm = JsVm::new(config);
    vm.load(js_source)?;
    let run = vm.call(spec.entry, &[]);
    let report = vm.report();
    let measurement = Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: profile.js.baseline_memory_bytes + report.heap.peak_live_bytes,
        code_size: js_source.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output: vm.output.clone(),
        context_switches: 0,
    };
    match run {
        Ok(_) => Ok(measurement),
        Err(e) => Err(RunFailure {
            error: RunError::Js(e),
            partial: Some(Box::new(measurement)),
        }),
    }
}

/// Run the native (x86 control) build, Fig 6.
pub fn run_native(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    entry: &str,
) -> Result<Measurement, RunError> {
    run_native_with(source, defines, level, entry, None)
}

/// [`run_native`], optionally sharing the compiled program through
/// `cache`.
pub fn run_native_with(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    entry: &str,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    try_run_native_with(
        source,
        defines,
        level,
        entry,
        ResourceLimits::default(),
        cache,
    )
    .map_err(|f| f.error)
}

/// [`run_native_with`] under explicit resource limits. Limits apply at
/// *run* time ([`wb_minic::backend::native::NativeProgram::run_with_limits`]),
/// so the compiled program is still shared through the cache across
/// cells with different limits.
pub fn try_run_native_with(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    entry: &str,
    limits: ResourceLimits,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunFailure> {
    let build = || -> Result<CachedNative, RunFailure> {
        let compiler = compiler_for(defines, level, Toolchain::Cheerp, Some(1 << 30));
        Ok(CachedNative {
            prog: compiler.compile_native(source)?,
        })
    };
    let artifact = match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Native,
                source,
                defines,
                level,
                Toolchain::Cheerp,
                Some(1 << 30),
                false,
            );
            cache.native(key, build)?
        }
        None => Arc::new(build()?),
    };
    let prog = &artifact.prog;
    let out = prog
        .run_with_limits(entry, &[], limits)
        .map_err(|e| RunFailure::from(RunError::Native(e)))?;
    let mut clock = VirtualClock::new();
    clock.advance(out.exec_time, wb_env::TimeBucket::Exec);
    Ok(Measurement {
        time: out.exec_time,
        clock,
        memory_bytes: out.data_bytes,
        code_size: prog.code_size(),
        counts: out.counts,
        arith: ArithCounts::default(),
        output: out.output,
        context_switches: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_env::{Browser, Platform};

    const KERNEL: &str = "#define N 24\n\
        double A[N][N];\n\
        void bench_main() {\n\
          for (int i = 0; i < N; i++)\n\
            for (int j = 0; j < N; j++)\n\
              A[i][j] = (double)(i * j % N) / N;\n\
          double s = 0.0;\n\
          for (int i = 0; i < N; i++)\n\
            for (int j = 0; j < N; j++) s += A[i][j] * A[j][i];\n\
          print_double(s);\n\
        }";

    #[test]
    fn wasm_and_js_runs_agree_on_output() {
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let j = run_compiled_js(&JsSpec::new(KERNEL)).unwrap();
        assert_eq!(w.output, j.output);
        assert!(w.time.0 > 0.0 && j.time.0 > 0.0);
        assert!(w.code_size > 0 && j.code_size > 0);
    }

    #[test]
    fn wasm_memory_includes_engine_baseline_plus_linear() {
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let baseline = Environment::desktop_chrome()
            .profile()
            .wasm
            .baseline_memory_bytes;
        assert!(w.memory_bytes > baseline);
        assert!(
            w.memory_bytes < baseline + (1 << 20),
            "small kernel stays small"
        );
    }

    #[test]
    fn js_memory_is_flat_for_typed_array_kernels() {
        let j = run_compiled_js(&JsSpec::new(KERNEL)).unwrap();
        let baseline = Environment::desktop_chrome()
            .profile()
            .js
            .baseline_memory_bytes;
        // Typed-array backing is external: reported stays near baseline.
        assert!(j.memory_bytes < baseline + 64 * 1024, "{}", j.memory_bytes);
    }

    #[test]
    fn environments_change_the_numbers() {
        let chrome = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let mut spec = WasmSpec::new(KERNEL);
        spec.env = Environment::new(Browser::Firefox, Platform::Desktop);
        let firefox = run_wasm(&spec).unwrap();
        assert_ne!(chrome.time.0, firefox.time.0);
        assert_eq!(
            chrome.output, firefox.output,
            "results identical, time differs"
        );
    }

    #[test]
    fn native_control_runs() {
        let n = run_native(KERNEL, &[], OptLevel::O2, "bench_main").unwrap();
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        assert_eq!(n.output, w.output);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let b = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        assert_eq!(a.time.0.to_bits(), b.time.0.to_bits());
        assert_eq!(a.memory_bytes, b.memory_bytes);
    }
}
