//! Run one program in one configuration and collect a [`Measurement`]
//! (§3.3–3.4): virtual execution time with attribution, DevTools-model
//! memory, code size, and instruction counts.

use crate::artifacts::{
    ArtifactCache, ArtifactKey, ArtifactKind, CachedJs, CachedNative, CachedWasm,
};
use crate::host::standard_imports;
use std::sync::Arc;
use wb_env::{
    calibration, ArithCounts, Environment, JitMode, Nanos, OpCounts, TierPolicy, Toolchain,
    VirtualClock,
};
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::{CompileError, Compiler, OptLevel};
use wb_wasm_vm::{Instance, PreparedModule, Trap, WasmVmConfig};

/// Everything one run produces (§3.4's two metrics plus attribution).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Total virtual time between the instrumentation timers.
    pub time: Nanos,
    /// Attribution breakdown (load/compile/exec/GC/grow/context switch).
    pub clock: VirtualClock,
    /// Reported memory, bytes — engine baseline + language-model usage
    /// (Wasm: committed linear memory, never reclaimed; JS: live GC heap,
    /// typed-array backing stores external), matching DevTools semantics.
    pub memory_bytes: u64,
    /// Artifact size in bytes (Wasm binary / JS source / native estimate).
    pub code_size: u64,
    /// Retired operations by class.
    pub counts: OpCounts,
    /// Fine-grained arithmetic profile (Table 12).
    pub arith: ArithCounts,
    /// Program output (checksums), for cross-backend verification.
    pub output: Vec<String>,
    /// JS↔Wasm boundary crossings (Wasm runs only).
    pub context_switches: u64,
}

/// A failed run.
#[derive(Debug)]
pub enum RunError {
    /// Compilation failed.
    Compile(CompileError),
    /// The Wasm VM trapped.
    Trap(Trap),
    /// The JS engine raised.
    Js(wb_jsvm::JsError),
    /// The native evaluator trapped.
    Native(wb_minic::backend::native::NativeTrap),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Trap(e) => write!(f, "wasm trap: {e}"),
            RunError::Js(e) => write!(f, "js error: {e}"),
            RunError::Native(e) => write!(f, "native trap: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<Trap> for RunError {
    fn from(e: Trap) -> Self {
        RunError::Trap(e)
    }
}

impl From<wb_jsvm::JsError> for RunError {
    fn from(e: wb_jsvm::JsError) -> Self {
        RunError::Js(e)
    }
}

/// Configuration of a Wasm run: compile `source` with the toolchain at
/// `level`, instantiate in `env`, call `entry`.
#[derive(Debug, Clone)]
pub struct WasmSpec<'a> {
    /// MiniC source.
    pub source: &'a str,
    /// Dataset `-D` defines (§3.2).
    pub defines: Vec<(String, String)>,
    /// Optimization level.
    pub level: OptLevel,
    /// Cheerp or Emscripten.
    pub toolchain: Toolchain,
    /// Browser × platform.
    pub env: Environment,
    /// Tier configuration (Table 11 flags).
    pub tier_policy: TierPolicy,
    /// `cheerp-linear-heap-size` override.
    pub heap_limit: Option<u64>,
    /// Run the VM's plain per-op interpreter instead of the fused
    /// micro-op engine (`--reference-exec`). Measurements are identical
    /// either way; this is the escape hatch that proves it.
    pub reference_exec: bool,
    /// Entry function.
    pub entry: &'a str,
}

impl<'a> WasmSpec<'a> {
    /// The study default: Cheerp, `-O2`, desktop Chrome, default tiers.
    pub fn new(source: &'a str) -> Self {
        WasmSpec {
            source,
            defines: Vec::new(),
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            tier_policy: TierPolicy::Default,
            heap_limit: Some(256 << 20),
            reference_exec: false,
            entry: "bench_main",
        }
    }
}

/// Configuration of a JS run.
#[derive(Debug, Clone)]
pub struct JsSpec<'a> {
    /// MiniC source (for [`run_compiled_js`]) or MiniJS source (for
    /// [`run_manual_js`]).
    pub source: &'a str,
    /// Dataset defines (compiled runs only).
    pub defines: Vec<(String, String)>,
    /// Optimization level (compiled runs only).
    pub level: OptLevel,
    /// Toolchain (compiled runs only).
    pub toolchain: Toolchain,
    /// Browser × platform.
    pub env: Environment,
    /// JIT enabled/disabled (`--no-opt`).
    pub jit: JitMode,
    /// Run without the fused-op overlay and inline caches
    /// (`--reference-exec`); measurement-invisible by construction.
    pub reference_exec: bool,
    /// Entry function.
    pub entry: &'a str,
}

impl<'a> JsSpec<'a> {
    /// The study default.
    pub fn new(source: &'a str) -> Self {
        JsSpec {
            source,
            defines: Vec::new(),
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            jit: JitMode::Enabled,
            reference_exec: false,
            entry: "bench_main",
        }
    }
}

fn compiler_for(
    defines: &[(String, String)],
    level: OptLevel,
    toolchain: Toolchain,
    heap: Option<u64>,
) -> Compiler {
    let mut c = Compiler::new(toolchain).opt_level(level);
    if let Some(h) = heap {
        c = c.heap_limit(h);
    }
    for (k, v) in defines {
        c = c.define(k, v.clone());
    }
    c
}

/// Reported Wasm memory: engine baseline + committed linear memory, with
/// the engine's large-heap over-commit slack (Table 6's Firefox XL
/// crossover).
pub fn reported_wasm_memory(env: Environment, linear_bytes: u64) -> u64 {
    let profile = env.profile();
    let slack_extra = if linear_bytes > calibration::GROW_SLACK_THRESHOLD_BYTES {
        ((linear_bytes - calibration::GROW_SLACK_THRESHOLD_BYTES) as f64
            * (profile.wasm_grow_slack - 1.0)) as u64
    } else {
        0
    };
    profile.wasm.baseline_memory_bytes + linear_bytes + slack_extra
}

/// Compile (or fetch from `cache`) the Wasm artifact for a spec. The
/// cached artifact goes through the same encode→decode→validate
/// roundtrip as [`Instance::instantiate`], so later execution over the
/// shared [`PreparedModule`] is bit-identical to the uncached path.
fn wasm_artifact(
    spec: &WasmSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Arc<CachedWasm>, RunError> {
    let build = || -> Result<CachedWasm, RunError> {
        let compiler = compiler_for(&spec.defines, spec.level, spec.toolchain, spec.heap_limit);
        let out = compiler.compile_wasm(spec.source)?;
        let bytes = wb_wasm::encode_module(&out.module);
        let module = wb_wasm::decode_module(&bytes).map_err(|e| {
            RunError::Trap(Trap::Host {
                message: format!("decode failed: {e}"),
            })
        })?;
        wb_wasm::validate(&module).map_err(|e| {
            RunError::Trap(Trap::Host {
                message: format!("validation failed: {e}"),
            })
        })?;
        Ok(CachedWasm {
            bytes,
            strings: out.strings,
            prepared: Arc::new(PreparedModule::new(module)),
        })
    };
    match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Wasm,
                spec.source,
                &spec.defines,
                spec.level,
                spec.toolchain,
                spec.heap_limit,
            );
            cache.wasm(key, build)
        }
        None => build().map(Arc::new),
    }
}

/// Run a compiled-to-Wasm benchmark end to end.
pub fn run_wasm(spec: &WasmSpec<'_>) -> Result<Measurement, RunError> {
    run_wasm_with(spec, None)
}

/// [`run_wasm`], optionally sharing compile artifacts through `cache`.
/// Caching skips real decode/validate/side-table work but replays the
/// same *virtual* load/compile charges, so the Measurement is
/// bit-identical either way.
pub fn run_wasm_with(
    spec: &WasmSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    let artifact = wasm_artifact(spec, cache)?;
    let profile = spec.env.profile();
    let mut config = WasmVmConfig::for_env(&profile);
    config.tier_policy = spec.tier_policy;
    config.reference_exec = spec.reference_exec;
    config.exec_overhead = calibration::toolchain_exec_overhead(spec.toolchain);

    // Deployment (§3.3): the page fetches the binary and instantiates it —
    // decode + validate + baseline compile are charged exactly as
    // `instantiate` would, against the pre-decoded module.
    let mut inst = Instance::instantiate_prepared(
        Arc::clone(&artifact.prepared),
        artifact.bytes.len(),
        config,
        standard_imports(artifact.strings.clone()),
    )?;
    inst.invoke(spec.entry, &[])?;
    let report = inst.report();

    Ok(Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: reported_wasm_memory(spec.env, report.memory.linear_bytes),
        code_size: artifact.bytes.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output: inst.output.clone(),
        context_switches: report.context_switches,
    })
}

/// Run a compiled-to-JavaScript benchmark end to end.
pub fn run_compiled_js(spec: &JsSpec<'_>) -> Result<Measurement, RunError> {
    run_compiled_js_with(spec, None)
}

/// [`run_compiled_js`], optionally sharing the generated JS source
/// through `cache`.
pub fn run_compiled_js_with(
    spec: &JsSpec<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    let build = || -> Result<CachedJs, RunError> {
        let compiler = compiler_for(&spec.defines, spec.level, spec.toolchain, None);
        let out = compiler.compile_js(spec.source)?;
        Ok(CachedJs { source: out.source })
    };
    let artifact = match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Js,
                spec.source,
                &spec.defines,
                spec.level,
                spec.toolchain,
                None,
            );
            cache.js(key, build)?
        }
        None => Arc::new(build()?),
    };
    run_js_source(&artifact.source, spec)
}

/// Run a manually-written MiniJS program (§4.1.2).
pub fn run_manual_js(spec: &JsSpec<'_>) -> Result<Measurement, RunError> {
    run_js_source(spec.source, spec)
}

fn run_js_source(js_source: &str, spec: &JsSpec<'_>) -> Result<Measurement, RunError> {
    let profile = spec.env.profile();
    let mut config = JsVmConfig::for_env(&profile);
    config.jit = spec.jit;
    config.reference_exec = spec.reference_exec;
    let mut vm = JsVm::new(config);
    vm.load(js_source)?;
    vm.call(spec.entry, &[])?;
    let report = vm.report();
    Ok(Measurement {
        time: report.total,
        clock: report.clock.clone(),
        memory_bytes: profile.js.baseline_memory_bytes + report.heap.peak_live_bytes,
        code_size: js_source.len() as u64,
        counts: report.counts,
        arith: report.arith,
        output: vm.output.clone(),
        context_switches: 0,
    })
}

/// Run the native (x86 control) build, Fig 6.
pub fn run_native(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    entry: &str,
) -> Result<Measurement, RunError> {
    run_native_with(source, defines, level, entry, None)
}

/// [`run_native`], optionally sharing the compiled program through
/// `cache`.
pub fn run_native_with(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    entry: &str,
    cache: Option<&ArtifactCache>,
) -> Result<Measurement, RunError> {
    let build = || -> Result<CachedNative, RunError> {
        let compiler = compiler_for(defines, level, Toolchain::Cheerp, Some(1 << 30));
        Ok(CachedNative {
            prog: compiler.compile_native(source)?,
        })
    };
    let artifact = match cache {
        Some(cache) => {
            let key = ArtifactKey::compute(
                ArtifactKind::Native,
                source,
                defines,
                level,
                Toolchain::Cheerp,
                Some(1 << 30),
            );
            cache.native(key, build)?
        }
        None => Arc::new(build()?),
    };
    let prog = &artifact.prog;
    let out = prog.run(entry, &[]).map_err(RunError::Native)?;
    let mut clock = VirtualClock::new();
    clock.advance(out.exec_time, wb_env::TimeBucket::Exec);
    Ok(Measurement {
        time: out.exec_time,
        clock,
        memory_bytes: out.data_bytes,
        code_size: prog.code_size(),
        counts: out.counts,
        arith: ArithCounts::default(),
        output: out.output,
        context_switches: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_env::{Browser, Platform};

    const KERNEL: &str = "#define N 24\n\
        double A[N][N];\n\
        void bench_main() {\n\
          for (int i = 0; i < N; i++)\n\
            for (int j = 0; j < N; j++)\n\
              A[i][j] = (double)(i * j % N) / N;\n\
          double s = 0.0;\n\
          for (int i = 0; i < N; i++)\n\
            for (int j = 0; j < N; j++) s += A[i][j] * A[j][i];\n\
          print_double(s);\n\
        }";

    #[test]
    fn wasm_and_js_runs_agree_on_output() {
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let j = run_compiled_js(&JsSpec::new(KERNEL)).unwrap();
        assert_eq!(w.output, j.output);
        assert!(w.time.0 > 0.0 && j.time.0 > 0.0);
        assert!(w.code_size > 0 && j.code_size > 0);
    }

    #[test]
    fn wasm_memory_includes_engine_baseline_plus_linear() {
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let baseline = Environment::desktop_chrome()
            .profile()
            .wasm
            .baseline_memory_bytes;
        assert!(w.memory_bytes > baseline);
        assert!(
            w.memory_bytes < baseline + (1 << 20),
            "small kernel stays small"
        );
    }

    #[test]
    fn js_memory_is_flat_for_typed_array_kernels() {
        let j = run_compiled_js(&JsSpec::new(KERNEL)).unwrap();
        let baseline = Environment::desktop_chrome()
            .profile()
            .js
            .baseline_memory_bytes;
        // Typed-array backing is external: reported stays near baseline.
        assert!(j.memory_bytes < baseline + 64 * 1024, "{}", j.memory_bytes);
    }

    #[test]
    fn environments_change_the_numbers() {
        let chrome = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let mut spec = WasmSpec::new(KERNEL);
        spec.env = Environment::new(Browser::Firefox, Platform::Desktop);
        let firefox = run_wasm(&spec).unwrap();
        assert_ne!(chrome.time.0, firefox.time.0);
        assert_eq!(
            chrome.output, firefox.output,
            "results identical, time differs"
        );
    }

    #[test]
    fn native_control_runs() {
        let n = run_native(KERNEL, &[], OptLevel::O2, "bench_main").unwrap();
        let w = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        assert_eq!(n.output, w.output);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        let b = run_wasm(&WasmSpec::new(KERNEL)).unwrap();
        assert_eq!(a.time.0.to_bits(), b.time.0.to_bits());
        assert_eq!(a.memory_bytes, b.memory_bytes);
    }
}
