//! Statistics used throughout the paper's tables: geometric means,
//! arithmetic means, the speedup/slowdown split of Tables 3/5, and the
//! five-number summaries of Fig 11.

/// Geometric mean of strictly positive values. Returns `None` for empty
/// input or any non-positive value.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean. Returns `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Five-number summary (Fig 11's box-and-whisker inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute the five-number summary (linear interpolation quantiles).
pub fn five_number(values: &[f64]) -> Option<FiveNumber> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
        }
    };
    Some(FiveNumber {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    })
}

/// The Tables 3/5 statistics: how many benchmarks sped up vs slowed down
/// (Wasm relative to JS), with per-group geometric means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSplit {
    /// Benchmarks where Wasm is slower than JS (the SD columns).
    pub slowdown_count: usize,
    /// Geomean slowdown factor (JS time advantage) over those.
    pub slowdown_gmean: f64,
    /// Benchmarks where Wasm is faster (the SU columns).
    pub speedup_count: usize,
    /// Geomean speedup factor over those.
    pub speedup_gmean: f64,
    /// Geomean speedup across all benchmarks (> 1 means Wasm faster; the
    /// paper prints slowdowns as `x↓` = 1/value).
    pub all_gmean: f64,
}

/// Build the split from `(js_time, wasm_time)` pairs.
pub fn speedup_split(pairs: &[(f64, f64)]) -> Option<SpeedupSplit> {
    if pairs.is_empty() {
        return None;
    }
    let mut slowdowns = Vec::new(); // wasm/js > 1 → wasm slower
    let mut speedups = Vec::new(); // js/wasm > 1 → wasm faster
    let mut all = Vec::new();
    for (js, wasm) in pairs {
        if *js <= 0.0 || *wasm <= 0.0 {
            return None;
        }
        let su = js / wasm;
        all.push(su);
        if su >= 1.0 {
            speedups.push(su);
        } else {
            slowdowns.push(1.0 / su);
        }
    }
    Some(SpeedupSplit {
        slowdown_count: slowdowns.len(),
        slowdown_gmean: geomean(&slowdowns).unwrap_or(1.0),
        speedup_count: speedups.len(),
        speedup_gmean: geomean(&speedups).unwrap_or(1.0),
        all_gmean: geomean(&all)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[1.0, 4.0]), Some(2.0));
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, -2.0]).is_none());
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn five_number_summary() {
        let f = five_number(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
        assert!(five_number(&[]).is_none());
        let single = five_number(&[7.0]).unwrap();
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
        assert_eq!(single.median, 7.0);
    }

    #[test]
    fn speedup_split_matches_table3_semantics() {
        // js=10/wasm=2 → 5× speedup; js=2/wasm=4 → 2× slowdown.
        let s = speedup_split(&[(10.0, 2.0), (2.0, 4.0)]).unwrap();
        assert_eq!(s.speedup_count, 1);
        assert_eq!(s.slowdown_count, 1);
        assert!((s.speedup_gmean - 5.0).abs() < 1e-12);
        assert!((s.slowdown_gmean - 2.0).abs() < 1e-12);
        // All-gmean: sqrt(5 × 0.5) ≈ 1.58 (wasm faster overall).
        assert!((s.all_gmean - (5.0f64 * 0.5).sqrt()).abs() < 1e-12);
    }
}
