//! Integration tests of the measurement pipeline's less-happy paths:
//! compile failures, traps, tier policies, JIT modes, and environment
//! permutations all flowing through the public API.

use wasmbench_core_test_helpers::*;
use wb_core::{run_compiled_js, run_manual_js, run_native, run_wasm, JsSpec, RunError, WasmSpec};
use wb_env::{Environment, JitMode, TierPolicy, Toolchain};
use wb_minic::OptLevel;

mod wasmbench_core_test_helpers {
    pub const OK_SRC: &str = "int r; void bench_main() { r = 6 * 7; print_int(r); }";
    pub const TRAP_SRC: &str = "int z; void bench_main() { z = 0; print_int(5 / z); }";
    pub const BAD_SRC: &str = "void bench_main() { undeclared = 1; }";
}

#[test]
fn compile_errors_surface_as_run_errors() {
    match run_wasm(&WasmSpec::new(BAD_SRC)) {
        Err(RunError::Compile(_)) => {}
        other => panic!("expected compile error, got {other:?}"),
    }
    match run_compiled_js(&JsSpec::new(BAD_SRC)) {
        Err(RunError::Compile(_)) => {}
        other => panic!("expected compile error, got {other:?}"),
    }
    match run_native(BAD_SRC, &[], OptLevel::O2, "bench_main") {
        Err(RunError::Compile(_)) => {}
        other => panic!("expected compile error, got {other:?}"),
    }
}

#[test]
fn traps_surface_with_engine_specific_types() {
    match run_wasm(&WasmSpec::new(TRAP_SRC)) {
        Err(RunError::Trap(wb_wasm_vm::Trap::DivByZero)) => {}
        other => panic!("expected div-by-zero trap, got {other:?}"),
    }
    match run_native(TRAP_SRC, &[], OptLevel::O2, "bench_main") {
        Err(RunError::Native(_)) => {}
        other => panic!("expected native trap, got {other:?}"),
    }
    // JS division by zero yields Infinity, not a trap — `5 / 0 | print`
    // prints "Infinity" in JS; the compiled `print_int((int)(5/0))` takes
    // the int path so the `(int)` conversion runs `Math.trunc(Infinity)|0`
    // = 0 in JS semantics. Both are legitimate; the differential suite
    // therefore never divides by zero. Here we just assert it *runs*.
    let r = run_compiled_js(&JsSpec::new(TRAP_SRC));
    assert!(r.is_ok(), "JS division by zero does not trap: {r:?}");
}

#[test]
fn all_tier_policies_and_jit_modes_run() {
    for policy in [
        TierPolicy::Default,
        TierPolicy::BasicOnly,
        TierPolicy::OptimizingOnly,
    ] {
        let mut spec = WasmSpec::new(OK_SRC);
        spec.tier_policy = policy;
        let m = run_wasm(&spec).expect("runs");
        assert_eq!(m.output, vec!["42"]);
    }
    for jit in [JitMode::Enabled, JitMode::Disabled] {
        let mut spec = JsSpec::new(OK_SRC);
        spec.jit = jit;
        let m = run_compiled_js(&spec).expect("runs");
        assert_eq!(m.output, vec!["42"]);
    }
}

#[test]
fn every_environment_and_toolchain_combination_runs() {
    for env in Environment::all_six() {
        for toolchain in [Toolchain::Cheerp, Toolchain::Emscripten] {
            let mut spec = WasmSpec::new(OK_SRC);
            spec.env = env;
            spec.toolchain = toolchain;
            let m = run_wasm(&spec).expect("runs");
            assert_eq!(m.output, vec!["42"], "{} {:?}", env.label(), toolchain);
            assert!(m.time.0 > 0.0);
            assert!(m.memory_bytes > 0);
        }
        let mut spec = JsSpec::new(OK_SRC);
        spec.env = env;
        let m = run_compiled_js(&spec).expect("runs");
        assert_eq!(m.output, vec!["42"], "{}", env.label());
    }
}

#[test]
fn manual_js_runs_through_the_same_pipeline() {
    let src = "function bench_main() { console.log(6 * 7); }";
    let m = run_manual_js(&JsSpec::new(src)).expect("runs");
    assert_eq!(m.output, vec!["42"]);
    assert_eq!(m.code_size, src.len() as u64);
}

#[test]
fn all_opt_levels_run_and_keep_results() {
    for level in OptLevel::ALL {
        let mut spec = WasmSpec::new(OK_SRC);
        spec.level = level;
        let m = run_wasm(&spec).expect("runs");
        assert_eq!(m.output, vec!["42"], "{level}");
    }
}

#[test]
fn context_switch_accounting_present_for_wasm_only() {
    let w = run_wasm(&WasmSpec::new(OK_SRC)).expect("runs");
    assert!(w.context_switches >= 2, "invoke crosses twice");
    let j = run_compiled_js(&JsSpec::new(OK_SRC)).expect("runs");
    assert_eq!(j.context_switches, 0);
}

#[test]
fn emscripten_memory_floor_is_16_mib() {
    let mut spec = WasmSpec::new(OK_SRC);
    spec.toolchain = Toolchain::Emscripten;
    let m = run_wasm(&spec).expect("runs");
    let baseline = Environment::desktop_chrome()
        .profile()
        .wasm
        .baseline_memory_bytes;
    assert!(m.memory_bytes >= baseline + (16 << 20));
}
