//! The cache invariant, end to end: a run served from the artifact
//! cache must produce a bit-identical [`Measurement`] to an uncached
//! run — same virtual time (to the bit), same memory, same output,
//! same counts — across all three backends and across environments.

use wb_core::{
    run_compiled_js_with, run_native_with, run_wasm_with, ArtifactCache, JsSpec, Measurement,
    WasmSpec,
};
use wb_env::{Browser, Environment, Platform, TierPolicy};
use wb_minic::OptLevel;

const KERNEL: &str = "#define N 20\n\
    double A[N][N];\n\
    void bench_main() {\n\
      for (int i = 0; i < N; i++)\n\
        for (int j = 0; j < N; j++)\n\
          A[i][j] = (double)(i * j % N) / N;\n\
      double s = 0.0;\n\
      for (int i = 0; i < N; i++)\n\
        for (int j = 0; j < N; j++) s += A[i][j] * A[j][i];\n\
      print_double(s);\n\
    }";

fn assert_identical(a: &Measurement, b: &Measurement, what: &str) {
    assert_eq!(
        a.time.0.to_bits(),
        b.time.0.to_bits(),
        "{what}: virtual time"
    );
    assert_eq!(a.memory_bytes, b.memory_bytes, "{what}: memory");
    assert_eq!(a.code_size, b.code_size, "{what}: code size");
    assert_eq!(a.output, b.output, "{what}: output");
    assert_eq!(a.counts.total(), b.counts.total(), "{what}: op counts");
    assert_eq!(a.context_switches, b.context_switches, "{what}: crossings");
}

#[test]
fn cached_wasm_runs_are_bit_identical() {
    let cache = ArtifactCache::new();
    let spec = WasmSpec::new(KERNEL);
    let uncached = run_wasm_with(&spec, None).unwrap();
    let miss = run_wasm_with(&spec, Some(&cache)).unwrap();
    let hit = run_wasm_with(&spec, Some(&cache)).unwrap();
    assert_identical(&uncached, &miss, "wasm cache miss");
    assert_identical(&uncached, &hit, "wasm cache hit");
    let s = cache.stats();
    assert_eq!((s.misses, s.hits), (1, 1));
}

#[test]
fn cached_wasm_is_identical_across_environments_and_tiers() {
    // One compile key serves many run configurations; each must match
    // its own uncached twin exactly.
    let cache = ArtifactCache::new();
    for env in [
        Environment::desktop_chrome(),
        Environment::new(Browser::Firefox, Platform::Desktop),
        Environment::new(Browser::Edge, Platform::Mobile),
    ] {
        for tier in [
            TierPolicy::Default,
            TierPolicy::BasicOnly,
            TierPolicy::OptimizingOnly,
        ] {
            let mut spec = WasmSpec::new(KERNEL);
            spec.env = env;
            spec.tier_policy = tier;
            let uncached = run_wasm_with(&spec, None).unwrap();
            let cached = run_wasm_with(&spec, Some(&cache)).unwrap();
            assert_identical(&uncached, &cached, "wasm env/tier grid");
        }
    }
    // 9 cells, one compile: run-time knobs are not part of the key.
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 8);
}

#[test]
fn cached_js_runs_are_bit_identical() {
    let cache = ArtifactCache::new();
    let spec = JsSpec::new(KERNEL);
    let uncached = run_compiled_js_with(&spec, None).unwrap();
    let miss = run_compiled_js_with(&spec, Some(&cache)).unwrap();
    let hit = run_compiled_js_with(&spec, Some(&cache)).unwrap();
    assert_identical(&uncached, &miss, "js cache miss");
    assert_identical(&uncached, &hit, "js cache hit");
}

#[test]
fn cached_native_runs_are_bit_identical() {
    let cache = ArtifactCache::new();
    let uncached = run_native_with(KERNEL, &[], OptLevel::O2, "bench_main", None).unwrap();
    let miss = run_native_with(KERNEL, &[], OptLevel::O2, "bench_main", Some(&cache)).unwrap();
    let hit = run_native_with(KERNEL, &[], OptLevel::O2, "bench_main", Some(&cache)).unwrap();
    assert_identical(&uncached, &miss, "native cache miss");
    assert_identical(&uncached, &hit, "native cache hit");
}

#[test]
fn distinct_configurations_do_not_share_artifacts() {
    // Changing a compile-relevant knob must miss, and the result must
    // still match its uncached twin.
    let cache = ArtifactCache::new();
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::Ofast] {
        let mut spec = WasmSpec::new(KERNEL);
        spec.level = level;
        let uncached = run_wasm_with(&spec, None).unwrap();
        let cached = run_wasm_with(&spec, Some(&cache)).unwrap();
        assert_identical(&uncached, &cached, "per-level");
    }
    assert_eq!(cache.stats().misses, 3, "each level compiles once");
}
