//! MiniC corpus lints.
//!
//! Three warning-level checks over the typed HIR:
//!
//! * **const-index-oob** — an array access whose indices are all compile
//!   time constants addresses an element outside the declared dimensions.
//!   Runs on the *const-folded* HIR (after the `-O1` pipeline), where
//!   `A[N-1]`-style bounds have been reduced to literals.
//! * **uninitialized-local** — a local is read before any assignment on
//!   the conservative straight-line walk (assignments inside `if` arms or
//!   loop bodies count as *maybe* and do suppress the warning).
//! * **dead-result** — an expression statement computes a value with no
//!   side effects (no call, no embedded assignment), so the result is
//!   discarded. Runs on the *unoptimized* HIR, before DCE deletes the
//!   evidence.
//!
//! Lints are advisory: they never fail an analysis run (the corpus is
//! measured as-is; the lints exist to catch benchmark-porting mistakes).

use wb_minic::hir::{Callee, HExpr, HFunc, HLval, HProgram, HStmt};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Which lint fired.
    pub lint: &'static str,
    /// Function the finding is in.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

/// Run every lint over a program. `folded` should be the same program
/// after constant folding (the const-index lint runs on it); pass the
/// unoptimized program twice to skip that distinction.
pub fn lint_program(raw: &HProgram, folded: &HProgram) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for f in &folded.funcs {
        lint_const_index(folded, f, &mut out);
    }
    for f in &raw.funcs {
        lint_uninitialized(f, &mut out);
        lint_dead_result(f, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// const-index-oob

fn lint_const_index(p: &HProgram, f: &HFunc, out: &mut Vec<LintFinding>) {
    walk_exprs(&f.body, &mut |e| {
        let (array, idx) = match e {
            HExpr::Elem { array, idx, .. } => (*array, idx),
            HExpr::AssignExpr { lhs, .. } => match lhs.as_ref() {
                HLval::Elem { array, idx } => (*array, idx),
                _ => return,
            },
            _ => return,
        };
        check_elem(p, f, array, idx, out);
    });
    walk_lvals(&f.body, &mut |lv| {
        if let HLval::Elem { array, idx } = lv {
            check_elem(p, f, *array, idx, out);
        }
    });
}

fn check_elem(p: &HProgram, f: &HFunc, array: u32, idx: &[HExpr], out: &mut Vec<LintFinding>) {
    let arr = &p.arrays[array as usize];
    let consts: Vec<Option<i64>> = idx
        .iter()
        .map(|e| match e {
            HExpr::ConstI(v, _) => Some(*v),
            _ => None,
        })
        .collect();
    for (k, v) in consts.iter().enumerate() {
        let Some(v) = v else { continue };
        let dim = i64::from(arr.dims[k]);
        if *v < 0 || *v >= dim {
            out.push(LintFinding {
                lint: "const-index-oob",
                func: f.name.clone(),
                message: format!(
                    "constant index {v} out of bounds for dimension {k} of '{}' (size {dim})",
                    arr.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// uninitialized-local

/// Conservative read-before-write: walks the body in program order,
/// treating branch/loop bodies as *possible* writers (their assignments
/// mark the local initialized for everything after). Params start
/// initialized. Only definite straight-line reads before any possible
/// write are reported.
fn lint_uninitialized(f: &HFunc, out: &mut Vec<LintFinding>) {
    let mut maybe_init = vec![false; f.locals.len()];
    maybe_init[..f.params.len()].fill(true);
    walk_uninit(&f.body, f, &mut maybe_init, out);
}

fn walk_uninit(stmts: &[HStmt], f: &HFunc, init: &mut [bool], out: &mut Vec<LintFinding>) {
    for s in stmts {
        match s {
            HStmt::DeclLocal { id, init: rhs } => {
                if let Some(e) = rhs {
                    check_reads(e, f, init, out);
                    init[*id as usize] = true;
                }
            }
            HStmt::Assign { lhs, value } => {
                check_reads(value, f, init, out);
                check_lval_reads(lhs, f, init, out);
                if let HLval::Local(id) = lhs {
                    init[*id as usize] = true;
                }
            }
            HStmt::Expr(e) => check_reads(e, f, init, out),
            HStmt::If(c, a, b) => {
                check_reads(c, f, init, out);
                walk_uninit(a, f, init, out);
                walk_uninit(b, f, init, out);
            }
            HStmt::Loop {
                init: li,
                cond,
                step,
                body,
                ..
            } => {
                walk_uninit(li, f, init, out);
                if let Some(c) = cond {
                    check_reads(c, f, init, out);
                }
                walk_uninit(body, f, init, out);
                walk_uninit(step, f, init, out);
            }
            HStmt::Return(e) => {
                if let Some(e) = e {
                    check_reads(e, f, init, out);
                }
            }
            HStmt::Break | HStmt::Continue => {}
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                check_reads(scrut, f, init, out);
                for (_, body) in cases {
                    walk_uninit(body, f, init, out);
                }
                walk_uninit(default, f, init, out);
            }
            HStmt::Block(b) => walk_uninit(b, f, init, out),
        }
    }
}

fn check_reads(e: &HExpr, f: &HFunc, init: &mut [bool], out: &mut Vec<LintFinding>) {
    each_subexpr(e, &mut |sub| {
        if let HExpr::Local(id, _) = sub {
            if !init[*id as usize] {
                init[*id as usize] = true; // report once per local
                out.push(LintFinding {
                    lint: "uninitialized-local",
                    func: f.name.clone(),
                    message: format!(
                        "local '{}' may be read before initialization",
                        f.locals[*id as usize].0
                    ),
                });
            }
        }
        // An embedded assignment initializes from here on.
        if let HExpr::AssignExpr { lhs, .. } = sub {
            if let HLval::Local(id) = lhs.as_ref() {
                init[*id as usize] = true;
            }
        }
    });
}

fn check_lval_reads(lv: &HLval, f: &HFunc, init: &mut [bool], out: &mut Vec<LintFinding>) {
    if let HLval::Elem { idx, .. } = lv {
        for e in idx {
            check_reads(e, f, init, out);
        }
    }
}

// ---------------------------------------------------------------------
// dead-result

fn lint_dead_result(f: &HFunc, out: &mut Vec<LintFinding>) {
    walk_stmts(&f.body, &mut |s| {
        if let HStmt::Expr(e) = s {
            if !has_side_effects(e) {
                out.push(LintFinding {
                    lint: "dead-result",
                    func: f.name.clone(),
                    message: "expression statement computes an unused value with no side effects"
                        .into(),
                });
            }
        }
    });
}

fn has_side_effects(e: &HExpr) -> bool {
    let mut found = false;
    each_subexpr(e, &mut |sub| {
        if matches!(
            sub,
            HExpr::AssignExpr { .. }
                | HExpr::Call {
                    callee: Callee::Func(_),
                    ..
                }
                | HExpr::Call {
                    callee: Callee::Intrinsic(_),
                    ..
                }
        ) {
            found = true;
        }
    });
    found
}

// ---------------------------------------------------------------------
// Walkers (read-only; the pass helpers in wb-minic are crate-private).

fn walk_stmts(stmts: &[HStmt], f: &mut impl FnMut(&HStmt)) {
    for s in stmts {
        f(s);
        match s {
            HStmt::If(_, a, b) => {
                walk_stmts(a, f);
                walk_stmts(b, f);
            }
            HStmt::Loop {
                init, step, body, ..
            } => {
                walk_stmts(init, f);
                walk_stmts(step, f);
                walk_stmts(body, f);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, b) in cases {
                    walk_stmts(b, f);
                }
                walk_stmts(default, f);
            }
            HStmt::Block(b) => walk_stmts(b, f),
            _ => {}
        }
    }
}

fn walk_exprs(stmts: &[HStmt], f: &mut impl FnMut(&HExpr)) {
    walk_stmts(stmts, &mut |s| {
        let mut on = |e: &HExpr| each_subexpr(e, f);
        match s {
            HStmt::DeclLocal { init: Some(e), .. } | HStmt::Expr(e) | HStmt::Return(Some(e)) => {
                on(e)
            }
            HStmt::Assign { value, .. } => on(value),
            HStmt::If(c, _, _) => on(c),
            HStmt::Loop { cond: Some(c), .. } => on(c),
            HStmt::Switch { scrut, .. } => on(scrut),
            _ => {}
        }
    });
}

fn walk_lvals(stmts: &[HStmt], f: &mut impl FnMut(&HLval)) {
    walk_stmts(stmts, &mut |s| {
        if let HStmt::Assign { lhs, .. } = s {
            f(lhs);
        }
    });
}

fn each_subexpr(e: &HExpr, f: &mut impl FnMut(&HExpr)) {
    f(e);
    match e {
        HExpr::ConstI(..) | HExpr::ConstF(..) | HExpr::Local(..) | HExpr::Global(..) => {}
        HExpr::Elem { idx, .. } => {
            for i in idx {
                each_subexpr(i, f);
            }
        }
        HExpr::Unary(_, a, _) => each_subexpr(a, f),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            each_subexpr(a, f);
            each_subexpr(b, f);
        }
        HExpr::Ternary(c, a, b, _) => {
            each_subexpr(c, f);
            each_subexpr(a, f);
            each_subexpr(b, f);
        }
        HExpr::Call { args, .. } => {
            for a in args {
                each_subexpr(a, f);
            }
        }
        HExpr::Cast { expr, .. } => each_subexpr(expr, f),
        HExpr::AssignExpr { lhs, value, .. } => {
            if let HLval::Elem { idx, .. } = lhs.as_ref() {
                for i in idx {
                    each_subexpr(i, f);
                }
            }
            each_subexpr(value, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_minic::Compiler;

    fn hir(src: &str) -> HProgram {
        let (h, _) = Compiler::cheerp().frontend(src).unwrap();
        h
    }

    #[test]
    fn flags_constant_oob_index() {
        let p = hir("int A[4]; int k() { return A[5]; }");
        let findings = lint_program(&p, &p);
        assert!(findings
            .iter()
            .any(|f| f.lint == "const-index-oob" && f.message.contains("index 5")));
    }

    #[test]
    fn flags_uninitialized_read() {
        let p = hir("int k() { int x; return x; }");
        let findings = lint_program(&p, &p);
        assert!(findings
            .iter()
            .any(|f| f.lint == "uninitialized-local" && f.message.contains("'x'")));
    }

    #[test]
    fn flags_dead_result() {
        let p = hir("int k() { int x = 1; x + 2; return x; }");
        let findings = lint_program(&p, &p);
        assert!(findings.iter().any(|f| f.lint == "dead-result"));
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let p = hir(
            "int A[4]; int k() { int s = 0; for (int i = 0; i < 4; i++) s = s + A[i]; return s; }",
        );
        assert!(lint_program(&p, &p).is_empty());
    }
}
