//! # wb-analysis — the static verification layer
//!
//! Ties the repo's four static analyses into one corpus-wide sweep
//! (DESIGN.md §8), exposed to the command line as `wb analyze`:
//!
//! 1. **IR verification** — every kernel's typed HIR is run through
//!    [`wb_minic::passes::run_pipeline_verified`] at all seven opt levels
//!    for all three targets; a pass that breaks an invariant is named.
//! 2. **Wasm type-checking** — every module the compiler emits (all
//!    kernels × all levels) is validated by the stack-polymorphic
//!    type-checker in `wb_wasm::validate`, with function/instruction
//!    context on failure.
//! 3. **Fusion cost-equivalence** — both VMs' fusion tables are
//!    symbolically audited ([`wb_wasm_vm::audit`], [`wb_jsvm::audit`]):
//!    every fused family × operator instance must charge the reference
//!    cost sequence.
//! 4. **Corpus lints** ([`lint`]) — advisory findings (constant-index
//!    out-of-bounds, uninitialized locals, dead results) across all
//!    kernels × dataset sizes.
//!
//! Checks 1–3 are hard: any failure makes the report fail. Lints are
//! warnings and never fail a run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;

use lint::LintFinding;
use wb_benchmarks::{all_benchmarks, InputSize};
use wb_minic::passes::{run_pipeline_verified, TargetKind};
use wb_minic::{Compiler, OptLevel};

/// All seven optimization levels, in sweep order.
pub const ALL_LEVELS: [OptLevel; 7] = [
    OptLevel::O0,
    OptLevel::O1,
    OptLevel::O2,
    OptLevel::O3,
    OptLevel::Ofast,
    OptLevel::Os,
    OptLevel::Oz,
];

const ALL_TARGETS: [(TargetKind, &str); 3] = [
    (TargetKind::Wasm, "wasm"),
    (TargetKind::Js, "js"),
    (TargetKind::Native, "native"),
];

/// Outcome of one hard check (IR verification or Wasm validation).
#[derive(Debug, Clone)]
pub struct Check {
    /// Kernel name.
    pub kernel: String,
    /// Opt level (`-O2` style).
    pub level: String,
    /// Target or engine the check ran against.
    pub subject: String,
    /// Whether the check passed.
    pub ok: bool,
    /// Diagnostic on failure.
    pub error: Option<String>,
}

/// A lint finding with its corpus coordinates.
#[derive(Debug, Clone)]
pub struct CorpusLint {
    /// Kernel name.
    pub kernel: String,
    /// Dataset size name.
    pub size: String,
    /// The finding.
    pub finding: LintFinding,
}

/// What to sweep. [`AnalysisConfig::full`] covers the acceptance surface;
/// [`AnalysisConfig::quick`] is a smoke subset for tests.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Kernels to analyze (names from the 41-kernel corpus); empty = all.
    pub kernels: Vec<String>,
    /// Dataset sizes the lints sweep.
    pub sizes: Vec<InputSize>,
    /// Run the fusion cost-equivalence audit.
    pub fusion: bool,
}

impl AnalysisConfig {
    /// The full corpus: 41 kernels × 7 levels × 3 targets, lints at all
    /// five sizes, both fusion tables.
    pub fn full() -> Self {
        AnalysisConfig {
            kernels: Vec::new(),
            sizes: InputSize::ALL.to_vec(),
            fusion: true,
        }
    }

    /// A fast subset (three kernels, one size) for smoke tests.
    pub fn quick() -> Self {
        AnalysisConfig {
            kernels: vec!["gemm".into(), "jacobi-2d".into(), "AES".into()],
            sizes: vec![InputSize::XS],
            fusion: true,
        }
    }
}

/// The machine-readable result of a sweep.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// IR-verification outcomes (kernel × level × target).
    pub ir: Vec<Check>,
    /// Wasm type-check outcomes (kernel × level).
    pub wasm: Vec<Check>,
    /// Fusion-audit outcomes (engine × family × operator).
    pub fusion: Vec<Check>,
    /// Advisory lint findings (kernel × size).
    pub lints: Vec<CorpusLint>,
}

impl AnalysisReport {
    /// Whether every hard check passed (lints don't count).
    pub fn ok(&self) -> bool {
        self.ir.iter().all(|c| c.ok)
            && self.wasm.iter().all(|c| c.ok)
            && self.fusion.iter().all(|c| c.ok)
    }

    /// Failed hard checks, in report order.
    pub fn failures(&self) -> Vec<&Check> {
        self.ir
            .iter()
            .chain(&self.wasm)
            .chain(&self.fusion)
            .filter(|c| !c.ok)
            .collect()
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "ir: {}/{} ok, wasm: {}/{} ok, fusion: {}/{} ok, lints: {} finding(s)",
            self.ir.iter().filter(|c| c.ok).count(),
            self.ir.len(),
            self.wasm.iter().filter(|c| c.ok).count(),
            self.wasm.len(),
            self.fusion.iter().filter(|c| c.ok).count(),
            self.fusion.len(),
            self.lints.len(),
        )
    }

    /// Deterministic JSON rendering (same hand-rolled style as the
    /// harness result writers; no external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"summary\": \"{}\",\n", esc(&self.summary())));
        for (key, checks) in [
            ("ir", &self.ir),
            ("wasm", &self.wasm),
            ("fusion", &self.fusion),
        ] {
            s.push_str(&format!("  \"{key}\": [\n"));
            // Only failures carry detail; passing checks are summarized by
            // the counts above to keep the report reviewable.
            let mut first = true;
            for c in checks.iter().filter(|c| !c.ok) {
                if !first {
                    s.push_str(",\n");
                }
                first = false;
                s.push_str(&format!(
                    "    {{\"kernel\": \"{}\", \"level\": \"{}\", \"subject\": \"{}\", \"error\": \"{}\"}}",
                    esc(&c.kernel),
                    esc(&c.level),
                    esc(&c.subject),
                    esc(c.error.as_deref().unwrap_or(""))
                ));
            }
            if !first {
                s.push('\n');
            }
            s.push_str("  ],\n");
        }
        s.push_str(&format!(
            "  \"checks\": {},\n",
            self.ir.len() + self.wasm.len() + self.fusion.len()
        ));
        s.push_str("  \"lints\": [\n");
        for (i, l) in self.lints.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"size\": \"{}\", \"lint\": \"{}\", \"func\": \"{}\", \"message\": \"{}\"}}{}\n",
                esc(&l.kernel),
                esc(&l.size),
                esc(l.finding.lint),
                esc(&l.finding.func),
                esc(&l.finding.message),
                if i + 1 < self.lints.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn level_name(l: OptLevel) -> &'static str {
    match l {
        OptLevel::O0 => "-O0",
        OptLevel::O1 => "-O1",
        OptLevel::O2 => "-O2",
        OptLevel::O3 => "-O3",
        OptLevel::Ofast => "-Ofast",
        OptLevel::Os => "-Os",
        OptLevel::Oz => "-Oz",
    }
}

/// Run the configured sweep.
pub fn analyze(cfg: &AnalysisConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| cfg.kernels.is_empty() || cfg.kernels.iter().any(|k| k == b.name))
        .collect();

    for bench in &benches {
        // Front-end once per kernel (M size — verification invariants
        // don't depend on the dataset; lints sweep the sizes below).
        let mut compiler = Compiler::cheerp();
        for (k, v) in bench.defines(InputSize::M) {
            compiler = compiler.define(&k, v);
        }
        let front = compiler.frontend(bench.source);
        for level in ALL_LEVELS {
            for (target, tname) in ALL_TARGETS {
                let (ok, error) = match &front {
                    Ok((hir, _)) => {
                        let mut h = hir.clone();
                        match run_pipeline_verified(&mut h, level, target) {
                            Ok(()) => (true, None),
                            Err(e) => (false, Some(e.to_string())),
                        }
                    }
                    Err(e) => (false, Some(format!("frontend: {e}"))),
                };
                report.ir.push(Check {
                    kernel: bench.name.to_string(),
                    level: level_name(level).into(),
                    subject: tname.into(),
                    ok,
                    error,
                });
            }

            // Emit and type-check the Wasm artifact at this level.
            let mut c = Compiler::cheerp().opt_level(level).verify_ir(false);
            for (k, v) in bench.defines(InputSize::M) {
                c = c.define(&k, v);
            }
            let (ok, error) = match c.compile_wasm(bench.source) {
                Ok(out) => match wb_wasm::validate(&out.module) {
                    Ok(()) => (true, None),
                    Err(e) => (false, Some(e.to_string())),
                },
                Err(e) => (false, Some(format!("compile: {e}"))),
            };
            report.wasm.push(Check {
                kernel: bench.name.to_string(),
                level: level_name(level).into(),
                subject: "wasm".into(),
                ok,
                error,
            });
        }

        // Lints, per dataset size: raw HIR for flow lints, folded (-O1)
        // HIR for constant-index bounds.
        for &size in &cfg.sizes {
            let mut c = Compiler::cheerp();
            for (k, v) in bench.defines(size) {
                c = c.define(&k, v);
            }
            let Ok((raw, _)) = c.frontend(bench.source) else {
                continue; // already reported as an IR failure above
            };
            let mut folded = raw.clone();
            let _ = run_pipeline_verified(&mut folded, OptLevel::O1, TargetKind::Wasm);
            for finding in lint::lint_program(&raw, &folded) {
                report.lints.push(CorpusLint {
                    kernel: bench.name.to_string(),
                    size: size.name().to_string(),
                    finding,
                });
            }
        }
    }

    if cfg.fusion {
        for e in wb_wasm_vm::audit::audit_fusion_table() {
            report.fusion.push(Check {
                kernel: "wasm-vm".into(),
                level: "-".into(),
                subject: e.instance,
                ok: e.ok,
                error: e.detail,
            });
        }
        for e in wb_jsvm::audit::audit_fusion_table() {
            report.fusion.push(Check {
                kernel: "jsvm".into(),
                level: "-".into(),
                subject: e.instance,
                ok: e.ok,
                error: e.detail,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean() {
        let report = analyze(&AnalysisConfig::quick());
        assert!(report.ok(), "failures: {:?}", report.failures());
        // 3 kernels × 7 levels × 3 targets IR checks, × 1 wasm check.
        assert_eq!(report.ir.len(), 3 * 7 * 3);
        assert_eq!(report.wasm.len(), 3 * 7);
        assert!(!report.fusion.is_empty());
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let report = analyze(&AnalysisConfig {
            kernels: vec!["gemm".into()],
            sizes: vec![],
            fusion: false,
        });
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"ok\": true"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
