//! Full-corpus invariant sweep: every kernel × every opt level × every
//! target runs the verified pipeline cleanly, every emitted Wasm module
//! type-checks, both fusion tables are cost-equivalent, and the corpus
//! is lint-clean. This is the same sweep `wb analyze --all` performs.

use wb_analysis::{analyze, AnalysisConfig};

#[test]
fn whole_corpus_passes_static_analysis() {
    let report = analyze(&AnalysisConfig::full());
    assert!(
        report.ok(),
        "static analysis failures:\n{}",
        report
            .failures()
            .iter()
            .map(|c| format!(
                "  {} {} {}: {}",
                c.kernel,
                c.level,
                c.subject,
                c.error.as_deref().unwrap_or("?")
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The corpus is fixed at 41 kernels; the sweep shape is part of the
    // contract (41 × 7 levels × 3 targets IR runs, 41 × 7 modules).
    assert_eq!(report.ir.len(), 41 * 7 * 3);
    assert_eq!(report.wasm.len(), 41 * 7);
    assert!(report.fusion.len() >= 800, "{}", report.fusion.len());
    assert!(report.lints.is_empty(), "{:?}", report.lints);
}
