//! Negative-fixture corpus for the static verification layer.
//!
//! Every fixture here is a deliberately malformed program — MiniC HIR
//! with a broken invariant, or a Wasm module that must not validate —
//! paired with the diagnostic the analysis layer is required to produce.
//! The point is to pin down *which* check fires and *what context* it
//! carries (pass attribution for IR breaks, function/instruction
//! context for Wasm breaks), not merely that "an error happens".

use wb_minic::hir::{HExpr, HFunc, HProgram, HStmt, Ty};
use wb_minic::passes::{run_pipeline_verified, TargetKind};
use wb_minic::verify::verify_program;
use wb_minic::{Compiler, OptLevel};
use wb_wasm::{decode_module, validate, DecodeError, Instr, MemArg, ModuleBuilder, ValType};

fn func(name: &str, ret: Ty, locals: Vec<(String, Ty)>, body: Vec<HStmt>) -> HProgram {
    HProgram {
        funcs: vec![HFunc {
            name: name.into(),
            params: vec![],
            ret,
            locals,
            body,
        }],
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// IR verifier fixtures: each names the broken invariant, and the
// verified pipeline attributes a pre-broken program to "input".

#[test]
fn ir_break_outside_loop_is_rejected() {
    let p = func("f", Ty::Void, vec![], vec![HStmt::Break]);
    let e = verify_program(&p).unwrap_err();
    assert_eq!(e.func.as_deref(), Some("f"));
    assert!(e.detail.contains("break"), "{e}");
}

#[test]
fn ir_breaks_are_attributed_to_input_by_the_pipeline() {
    let mut p = func("f", Ty::Void, vec![], vec![HStmt::Continue]);
    let e = run_pipeline_verified(&mut p, OptLevel::O2, TargetKind::Wasm).unwrap_err();
    assert_eq!(e.pass, "input");
    assert!(e.to_string().contains("before pipeline"), "{e}");
}

#[test]
fn ir_wrong_cached_binary_type_is_rejected() {
    // An i32 + i32 node whose cached result type claims f64: exactly the
    // kind of damage a buggy pass would do.
    let bad = HExpr::Binary(
        wb_minic::hir::HBinOp::Add,
        Box::new(HExpr::ConstI(1, Ty::INT)),
        Box::new(HExpr::ConstI(2, Ty::INT)),
        Ty::F64,
    );
    let p = func("f", Ty::Void, vec![], vec![HStmt::Expr(bad)]);
    let e = verify_program(&p).unwrap_err();
    assert_eq!(e.func.as_deref(), Some("f"));
}

#[test]
fn ir_out_of_bounds_local_is_rejected() {
    let p = func(
        "f",
        Ty::INT,
        vec![],
        vec![HStmt::Return(Some(HExpr::Local(7, Ty::INT)))],
    );
    let e = verify_program(&p).unwrap_err();
    assert!(e.detail.contains("local"), "{e}");
}

#[test]
fn ir_return_arity_mismatch_is_rejected() {
    // Void function returning a value.
    let p = func(
        "f",
        Ty::Void,
        vec![],
        vec![HStmt::Return(Some(HExpr::ConstI(0, Ty::INT)))],
    );
    assert!(verify_program(&p).is_err());
}

#[test]
fn ir_read_before_def_is_rejected() {
    let p = func(
        "f",
        Ty::INT,
        vec![("x".into(), Ty::INT)],
        vec![HStmt::Return(Some(HExpr::Local(0, Ty::INT)))],
    );
    let e = verify_program(&p).unwrap_err();
    assert!(e.detail.contains('x'), "{e}");
}

// ---------------------------------------------------------------------
// Frontend fixtures: malformed source never reaches the HIR layer.

#[test]
fn frontend_rejects_undeclared_identifier() {
    assert!(Compiler::cheerp()
        .frontend("int f() { return nope; }")
        .is_err());
}

#[test]
fn frontend_rejects_syntax_error() {
    assert!(Compiler::cheerp().frontend("int f( { return 0; }").is_err());
}

// ---------------------------------------------------------------------
// Wasm validator fixtures: each must fail with the specific variant,
// and body-level failures must carry function/instruction context.

#[test]
fn wasm_missing_result_reports_function_context() {
    let mut b = ModuleBuilder::new();
    let mut f = b.func("f", vec![], vec![ValType::I32]);
    f.done(); // close the body without producing the i32 result
    b.finish_func(f, true);
    let e = validate(&b.build()).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("func 0"), "no function context: {msg}");
    assert!(
        matches!(
            e.root_cause(),
            wb_wasm::ValidationError::TypeMismatch { .. }
        ),
        "{e:?}"
    );
}

#[test]
fn wasm_bad_local_index_is_rejected() {
    let mut b = ModuleBuilder::new();
    let mut f = b.func("f", vec![], vec![]);
    f.op(Instr::LocalGet(5)).op(Instr::Drop);
    b.finish_func(f, true);
    let e = validate(&b.build()).unwrap_err();
    assert!(
        matches!(
            e.root_cause(),
            wb_wasm::ValidationError::BadLocalIndex { index: 5 }
        ),
        "{e:?}"
    );
}

#[test]
fn wasm_branch_past_control_stack_is_rejected() {
    let mut b = ModuleBuilder::new();
    let mut f = b.func("f", vec![], vec![]);
    f.op(Instr::Br(3));
    b.finish_func(f, true);
    let e = validate(&b.build()).unwrap_err();
    assert!(
        matches!(
            e.root_cause(),
            wb_wasm::ValidationError::BadLabel { depth: 3 }
        ),
        "{e:?}"
    );
}

#[test]
fn wasm_load_without_memory_is_rejected() {
    let mut b = ModuleBuilder::new();
    let mut f = b.func("f", vec![], vec![ValType::I32]);
    f.op(Instr::I32Const(0))
        .op(Instr::I32Load(MemArg::natural(4)));
    b.finish_func(f, true);
    let e = validate(&b.build()).unwrap_err();
    assert!(
        matches!(e.root_cause(), wb_wasm::ValidationError::NoMemory),
        "{e:?}"
    );
}

#[test]
fn wasm_over_aligned_access_is_rejected() {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let mut f = b.func("f", vec![], vec![ValType::I32]);
    f.op(Instr::I32Const(0)).op(Instr::I32Load(MemArg {
        align: 3, // 2^3 = 8 > natural 4
        offset: 0,
    }));
    b.finish_func(f, true);
    let e = validate(&b.build()).unwrap_err();
    assert!(
        matches!(e.root_cause(), wb_wasm::ValidationError::BadAlignment),
        "{e:?}"
    );
}

// ---------------------------------------------------------------------
// Decoder fixtures: malformed binaries never reach validation.

#[test]
fn decode_rejects_bad_magic() {
    let e = decode_module(b"\x00msa\x01\x00\x00\x00").unwrap_err();
    assert_eq!(e, DecodeError::BadHeader);
}

#[test]
fn decode_rejects_truncated_module() {
    // Valid header, then a section id with no size byte.
    let e = decode_module(b"\x00asm\x01\x00\x00\x00\x0a").unwrap_err();
    assert!(matches!(e, DecodeError::UnexpectedEof { .. }), "{e:?}");
}
