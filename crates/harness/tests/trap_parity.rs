//! Differential trap-parity suite (ISSUE 5, satellite c): the same
//! faulting program must surface the same [`TrapKind`] on every backend
//! (Wasm VM, MiniJS VM with wasm-parity trap checks, native reference)
//! at every optimization level — and the virtual charges accumulated
//! *before* the trap must be bit-identical between the fused and
//! reference execution paths, and across repeated runs.
//!
//! Fixture notes: divisors and indices are loaded from runtime-written
//! global arrays so no opt level can fold the fault away; the OOB index
//! (2^27 elements ≈ 512 MiB of int) lands far past committed linear
//! memory, because Wasm bounds are page-granular while JS/native check
//! array extents. `INT_MIN / -1` is deliberately out of scope — Wasm
//! traps (overflow) where native semantics differ.

use wb_core::{
    try_run_compiled_js_with, try_run_native_with, try_run_wasm_with, JsSpec, Measurement,
    RunFailure, TrapKind, WasmSpec,
};
use wb_env::ResourceLimits;
use wb_minic::OptLevel;

/// Runtime-opaque division by zero: `zeros[3]` is written in a loop, so
/// the divisor is only known at run time.
const DIV0_SRC: &str = "int zeros[8];\n\
    void bench_main() {\n\
      for (int i = 0; i < 8; i++) zeros[i] = i / 9;\n\
      print_int(100 / zeros[3]);\n\
    }";

/// Runtime-opaque out-of-bounds read far past page bounds: index is
/// 2^27 + data[2] - 2, i.e. ~512 MiB into a 64-byte array.
const OOB_SRC: &str = "int data[16];\n\
    void bench_main() {\n\
      for (int i = 0; i < 16; i++) data[i] = i;\n\
      int big = 134217728 + data[2] - 2;\n\
      print_int(data[big]);\n\
    }";

/// Unbounded-enough recursion; the configured call-depth limit (64) is
/// what actually fires, identically on all backends.
const RECURSE_SRC: &str = "int rec(int n) {\n\
      if (n <= 0) return 0;\n\
      return rec(n - 1) + 1;\n\
    }\n\
    void bench_main() { print_int(rec(5000)); }";

/// The three fixtures with their expected unified trap kind and limits.
fn fixtures() -> Vec<(&'static str, &'static str, ResourceLimits, TrapKind)> {
    let shallow = ResourceLimits {
        max_call_depth: 64,
        ..ResourceLimits::default()
    };
    vec![
        (
            "div0",
            DIV0_SRC,
            ResourceLimits::default(),
            TrapKind::DivByZero,
        ),
        (
            "oob",
            OOB_SRC,
            ResourceLimits::default(),
            TrapKind::OutOfBounds,
        ),
        ("recurse", RECURSE_SRC, shallow, TrapKind::StackOverflow),
    ]
}

fn wasm_failure(src: &str, level: OptLevel, limits: ResourceLimits, reference: bool) -> RunFailure {
    let mut spec = WasmSpec::new(src);
    spec.level = level;
    spec.limits = limits;
    spec.reference_exec = reference;
    try_run_wasm_with(&spec, None).expect_err("fixture must trap on wasm")
}

fn js_failure(src: &str, level: OptLevel, limits: ResourceLimits, reference: bool) -> RunFailure {
    let mut spec = JsSpec::new(src);
    spec.level = level;
    spec.limits = limits;
    spec.reference_exec = reference;
    spec.trap_checks = true;
    try_run_compiled_js_with(&spec, None).expect_err("fixture must trap on js")
}

fn native_failure(src: &str, level: OptLevel, limits: ResourceLimits) -> RunFailure {
    try_run_native_with(src, &[], level, "bench_main", limits, None)
        .expect_err("fixture must trap on native")
}

/// Bit-exact signature of the charges accumulated before the trap.
fn sig(m: &Measurement) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.time.0.to_bits(),
        m.clock.load_time.0.to_bits(),
        m.clock.compile_time.0.to_bits(),
        m.clock.exec_time.0.to_bits(),
        m.counts.total(),
        m.arith.total(),
    )
}

fn partial_sig(f: &RunFailure, what: &str) -> (u64, u64, u64, u64, u64, u64) {
    sig(f
        .partial
        .as_ref()
        .unwrap_or_else(|| panic!("{what}: trap must carry a partial measurement")))
}

#[test]
fn trap_kinds_agree_across_backends_at_every_level() {
    for (name, src, limits, want) in fixtures() {
        for level in OptLevel::ALL {
            let w = wasm_failure(src, level, limits, false);
            let j = js_failure(src, level, limits, false);
            let n = native_failure(src, level, limits);
            for (backend, f) in [("wasm", &w), ("js", &j), ("native", &n)] {
                assert_eq!(
                    f.error.kind(),
                    want,
                    "{name}/{level:?}/{backend}: got {} ({})",
                    f.error.kind(),
                    f.error
                );
            }
        }
    }
}

#[test]
fn pre_trap_charges_match_fused_and_reference_paths() {
    // The fused micro-op engines must charge exactly what the plain
    // interpreters charge right up to the trap — the fault-path
    // extension of the PR 2 bit-identical-measurement invariant.
    for (name, src, limits, _) in fixtures() {
        for level in OptLevel::ALL {
            let fused = wasm_failure(src, level, limits, false);
            let reference = wasm_failure(src, level, limits, true);
            assert_eq!(
                partial_sig(&fused, name),
                partial_sig(&reference, name),
                "{name}/{level:?}: wasm fused vs reference pre-trap charges"
            );
            let fused = js_failure(src, level, limits, false);
            let reference = js_failure(src, level, limits, true);
            assert_eq!(
                partial_sig(&fused, name),
                partial_sig(&reference, name),
                "{name}/{level:?}: js fused vs reference pre-trap charges"
            );
        }
    }
}

#[test]
fn pre_trap_charges_are_repeatable() {
    for (name, src, limits, want) in fixtures() {
        let a = wasm_failure(src, OptLevel::O2, limits, false);
        let b = wasm_failure(src, OptLevel::O2, limits, false);
        assert_eq!(
            partial_sig(&a, name),
            partial_sig(&b, name),
            "{name}: wasm pre-trap charges must be deterministic"
        );
        let a = js_failure(src, OptLevel::O2, limits, false);
        let b = js_failure(src, OptLevel::O2, limits, false);
        assert_eq!(
            partial_sig(&a, name),
            partial_sig(&b, name),
            "{name}: js pre-trap charges must be deterministic"
        );
        // Native runs carry no partial (the reference evaluator has no
        // virtual clock of its own) but must still fault identically.
        let a = native_failure(src, OptLevel::O2, limits);
        let b = native_failure(src, OptLevel::O2, limits);
        assert_eq!(a.error.kind(), want, "{name}: native kind");
        assert_eq!(a.error.kind(), b.error.kind(), "{name}: native repeatable");
    }
}
