//! Suite-wide fused-vs-reference differential test.
//!
//! Runs every benchmark at XS through both execution engines — the fused
//! micro-op engine (default) and the plain per-op interpreter
//! (`--reference-exec`) — across backends, Wasm tier policies and JS JIT
//! modes, asserting the resulting [`Measurement`]s are bit-identical.
//! This is the end-to-end proof of the cost-equivalence invariant the
//! per-VM differential tests check in miniature.

use wb_benchmarks::InputSize;
use wb_core::Measurement;
use wb_env::{JitMode, TierPolicy};
use wb_harness::{parallel_map, Run};

fn assert_measurements_identical(a: &Measurement, b: &Measurement, what: &str) {
    assert_eq!(a.time.0.to_bits(), b.time.0.to_bits(), "{what}: time");
    let buckets = [
        ("load", a.clock.load_time, b.clock.load_time),
        ("compile", a.clock.compile_time, b.clock.compile_time),
        ("exec", a.clock.exec_time, b.clock.exec_time),
        ("gc", a.clock.gc_time, b.clock.gc_time),
        ("grow", a.clock.mem_grow_time, b.clock.mem_grow_time),
        (
            "ctx",
            a.clock.context_switch_time,
            b.clock.context_switch_time,
        ),
    ];
    for (name, x, y) in buckets {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "{what}: {name} time");
    }
    assert_eq!(a.memory_bytes, b.memory_bytes, "{what}: memory");
    assert_eq!(a.code_size, b.code_size, "{what}: code size");
    assert_eq!(a.counts.0, b.counts.0, "{what}: op counts");
    assert_eq!(a.arith, b.arith, "{what}: arith profile");
    assert_eq!(a.output, b.output, "{what}: program output");
    assert_eq!(
        a.context_switches, b.context_switches,
        "{what}: context switches"
    );
}

fn fused_and_reference(mut run: Run) -> (Run, Run) {
    run.reference_exec = false;
    let mut reference = run.clone();
    reference.reference_exec = true;
    (run, reference)
}

#[test]
fn wasm_suite_matches_across_engines_and_tier_policies() {
    let mut cells = Vec::new();
    for b in wb_benchmarks::all_benchmarks() {
        for tier_policy in [
            TierPolicy::Default,
            TierPolicy::BasicOnly,
            TierPolicy::OptimizingOnly,
        ] {
            let mut run = Run::new(b.clone(), InputSize::XS);
            run.tier_policy = tier_policy;
            cells.push(run);
        }
    }
    parallel_map(cells, |run| {
        let what = format!("{} wasm {:?}", run.benchmark.name, run.tier_policy);
        let (fused, reference) = fused_and_reference(run);
        assert_measurements_identical(&fused.wasm(), &reference.wasm(), &what);
    });
}

#[test]
fn js_suite_matches_across_engines_and_jit_modes() {
    let mut cells = Vec::new();
    for b in wb_benchmarks::all_benchmarks() {
        for jit in [JitMode::Enabled, JitMode::Disabled] {
            let mut run = Run::new(b.clone(), InputSize::XS);
            run.jit = jit;
            cells.push(run);
        }
    }
    parallel_map(cells, |run| {
        let what = format!("{} js {:?}", run.benchmark.name, run.jit);
        let (fused, reference) = fused_and_reference(run);
        assert_measurements_identical(&fused.js(), &reference.js(), &what);
    });
}
