//! Tests for the harness CLI parsing and the `Run` grid-cell helper the
//! experiment binaries are built from.

use wb_benchmarks::InputSize;
use wb_core::ArtifactCache;
use wb_env::{Browser, Environment, Platform};
use wb_harness::{parallel_map, parallel_map_jobs, Cli, GridEngine, Run};

// --- Cli parsing -----------------------------------------------------------

#[test]
fn parses_key_value_and_key_eq_value_and_bare_flags() {
    let cli = Cli::from_args(["--filter", "gemm", "--out=custom", "--quick"]);
    assert_eq!(cli.get("filter"), Some("gemm"));
    assert_eq!(cli.get("out"), Some("custom"));
    assert!(cli.has("quick"));
    assert!(!cli.has("browser"));
    assert_eq!(cli.get("missing"), None);
}

#[test]
fn bare_flag_before_another_flag_is_boolean() {
    // `--quick --filter x`: `--quick` must not swallow `--filter`.
    let cli = Cli::from_args(["--quick", "--filter", "x"]);
    assert!(cli.has("quick"));
    assert_eq!(cli.get("quick"), Some("true"));
    assert_eq!(cli.get("filter"), Some("x"));
}

#[test]
fn positional_noise_without_dashes_is_ignored() {
    let cli = Cli::from_args(["stray", "--filter", "lu"]);
    assert_eq!(cli.get("filter"), Some("lu"));
    assert!(!cli.has("stray"));
}

#[test]
fn filter_restricts_benchmarks_case_insensitively() {
    let all = Cli::from_args(Vec::<String>::new()).benchmarks();
    assert_eq!(all.len(), 41, "paper corpus: 30 PolyBench + 11 CHStone");

    let some = Cli::from_args(["--filter", "GEMM"]).benchmarks();
    assert!(!some.is_empty() && some.len() < all.len());
    assert!(some.iter().all(|b| b.name.contains("gemm")));

    let none = Cli::from_args(["--filter", "no-such-kernel"]).benchmarks();
    assert!(none.is_empty());
}

#[test]
fn quick_mode_reduces_the_size_grid() {
    let full = Cli::from_args(Vec::<String>::new()).sizes();
    assert_eq!(full, InputSize::ALL.to_vec());
    let quick = Cli::from_args(["--quick"]).sizes();
    assert_eq!(quick, vec![InputSize::XS, InputSize::M, InputSize::XL]);
}

#[test]
fn quick_mode_subsamples_the_benchmark_suite() {
    let quick = Cli::from_args(["--quick"]).benchmarks();
    assert_eq!(quick.len(), 11, "every 4th of the 41 benchmarks");
    // An explicit filter wins over the subsample.
    let filtered = Cli::from_args(["--quick", "--filter", "gemm"]).benchmarks();
    assert!(filtered.iter().all(|b| b.name.contains("gemm")));
}

#[test]
fn jobs_flag_parses_and_rejects_zero() {
    assert_eq!(Cli::from_args(Vec::<String>::new()).jobs(), None);
    assert_eq!(Cli::from_args(["--jobs", "3"]).jobs(), Some(3));
    assert_eq!(Cli::from_args(["--jobs=1"]).jobs(), Some(1));
    assert_eq!(Cli::from_args(["--jobs", "0"]).jobs(), None);
}

#[test]
fn browser_flag_selects_the_environment() {
    let default = Cli::from_args(Vec::<String>::new()).environment();
    assert_eq!(default, Environment::desktop_chrome());

    let ff = Cli::from_args(["--browser", "firefox"]).environment();
    assert_eq!(ff, Environment::new(Browser::Firefox, Platform::Desktop));
    // Prefix + case-insensitive, as documented.
    let ff2 = Cli::from_args(["--browser", "Fire"]).environment();
    assert_eq!(ff2, ff);

    let edge = Cli::from_args(["--browser=edge"]).environment();
    assert_eq!(edge, Environment::new(Browser::Edge, Platform::Desktop));

    // Unknown values fall back to the study default (desktop Chrome).
    let unknown = Cli::from_args(["--browser", "safari"]).environment();
    assert_eq!(unknown, Environment::desktop_chrome());
}

// --- parallel_map ------------------------------------------------------------

#[test]
fn parallel_map_preserves_input_order() {
    let items: Vec<u64> = (0..200).collect();
    let out = parallel_map(items.clone(), |x| x * x);
    let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
    assert_eq!(out, expect);
}

#[test]
fn parallel_map_handles_empty_and_single_item() {
    let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
    assert!(empty.is_empty());
    assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
}

#[test]
fn parallel_map_with_one_job_runs_in_submission_order() {
    // With a single worker the FIFO queue fixes the execution order, not
    // just the output order.
    let executed = std::sync::Mutex::new(Vec::new());
    let out = parallel_map_jobs((0..50).collect(), Some(1), |x: u32| {
        executed.lock().unwrap().push(x);
        x
    });
    assert_eq!(out, (0..50).collect::<Vec<_>>());
    assert_eq!(executed.into_inner().unwrap(), (0..50).collect::<Vec<_>>());
}

#[test]
fn parallel_map_respects_job_bounds() {
    for jobs in [Some(1), Some(2), Some(64), None] {
        let out = parallel_map_jobs((0..20).collect(), jobs, |x: u64| x * 2);
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }
}

// --- GridEngine --------------------------------------------------------------

#[test]
fn grid_engine_shares_compiles_across_cells_and_workers() {
    static CACHE: std::sync::OnceLock<ArtifactCache> = std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(ArtifactCache::new);
    let engine = GridEngine::with_settings(Some(cache), Some(4));
    let b = wb_benchmarks::find("trisolv").expect("trisolv in corpus");
    let baseline = Run::new(b.clone(), InputSize::XS).wasm();

    // 6 environments, one compile key: same artifact, same measurements
    // as the uncached baseline in the matching environment.
    let runs: Vec<Run> = Environment::all_six()
        .iter()
        .map(|&env| {
            let mut run = Run::new(b.clone(), InputSize::XS);
            run.env = env;
            run
        })
        .collect();
    let results = engine.map(runs.clone(), |run| engine.wasm(&run));
    assert_eq!(results.len(), 6);
    let chrome = &results[runs
        .iter()
        .position(|r| r.env == Environment::desktop_chrome())
        .unwrap()];
    assert_eq!(chrome.time.0.to_bits(), baseline.time.0.to_bits());
    assert_eq!(chrome.output, baseline.output);

    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "one compile for six cells");
    assert_eq!(stats.hits, 5);
}

// --- Run ---------------------------------------------------------------------

#[test]
fn run_defaults_are_the_study_baseline() {
    let b = wb_benchmarks::find("gemm").expect("gemm in corpus");
    let run = Run::new(b, InputSize::XS);
    assert_eq!(run.env, Environment::desktop_chrome());
    assert_eq!(run.toolchain, wb_env::Toolchain::Cheerp);
    assert_eq!(run.level, wb_minic::OptLevel::O2);
    assert_eq!(run.tier_policy, wb_env::TierPolicy::Default);
    assert_eq!(run.jit, wb_env::JitMode::Enabled);
}

#[test]
fn run_executes_all_three_backends_with_identical_output() {
    let b = wb_benchmarks::find("durbin").expect("durbin in corpus");
    let run = Run::new(b, InputSize::XS);
    let w = run.wasm();
    let j = run.js();
    let n = run.native();
    assert!(!w.output.is_empty());
    assert_eq!(w.output, j.output, "Wasm and JS must agree");
    assert_eq!(w.output, n.output, "Wasm and native must agree");
    // Wasm runs cross the boundary at least twice (call in, return out).
    assert!(w.context_switches >= 2);
    // Every backend reports positive time, memory and code size.
    for m in [&w, &j, &n] {
        assert!(m.time.0 > 0.0);
        assert!(m.memory_bytes > 0);
        assert!(m.code_size > 0);
        assert!(m.counts.total() > 0);
    }
}

#[test]
fn run_grid_cell_is_deterministic() {
    let b = wb_benchmarks::find("trisolv").expect("trisolv in corpus");
    let run = Run::new(b, InputSize::XS);
    let a = run.wasm();
    let b2 = run.wasm();
    assert_eq!(
        a.time.0, b2.time.0,
        "virtual time must be exactly reproducible"
    );
    assert_eq!(a.memory_bytes, b2.memory_bytes);
    assert_eq!(a.output, b2.output);
    assert_eq!(a.counts.total(), b2.counts.total());
}

#[test]
fn larger_inputs_take_longer_on_every_backend() {
    let b = wb_benchmarks::find("bicg").expect("bicg in corpus");
    let xs = Run::new(b.clone(), InputSize::XS);
    let m = Run::new(b, InputSize::M);
    assert!(m.wasm().time.0 > xs.wasm().time.0);
    assert!(m.js().time.0 > xs.js().time.0);
    assert!(m.native().time.0 > xs.native().time.0);
}
