//! Fig 10: performance improvement with JIT optimization — execution time
//! without JIT divided by time with JIT, per benchmark, for JS (`--no-opt`)
//! and Wasm (`--liftoff --no-wasm-tier-up`) on Chrome.

use wb_benchmarks::{InputSize, Suite};
use wb_core::report::Table;
use wb_core::stats::{geomean, mean};
use wb_env::{JitMode, TierPolicy};
use wb_harness::{Cli, GridEngine, Run};

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);

    let rows = engine.map(cli.benchmarks(), |b| {
        let base = Run::new(b.clone(), InputSize::M);

        let js_jit = engine.js(&base);
        let mut no_jit = base.clone();
        no_jit.jit = JitMode::Disabled;
        let js_nojit = engine.js(&no_jit);

        let wasm_default = engine.wasm(&base);
        let mut basic_only = base.clone();
        basic_only.tier_policy = TierPolicy::BasicOnly;
        let wasm_basic = engine.wasm(&basic_only);

        (
            b.name,
            b.suite,
            js_nojit.time.0 / js_jit.time.0,
            wasm_basic.time.0 / wasm_default.time.0,
        )
    });

    for (suite, tag) in [
        (Suite::PolyBenchC, "polybench"),
        (Suite::CHStone, "chstone"),
    ] {
        let mut js_table = Table::new(
            &format!("Fig 10: JS speedup with JIT — {}", suite.name()),
            &["benchmark", "speedup"],
        );
        let mut wasm_table = Table::new(
            &format!("Fig 10: Wasm speedup with JIT (tier-up) — {}", suite.name()),
            &["benchmark", "speedup"],
        );
        let mut js_vals = Vec::new();
        let mut wasm_vals = Vec::new();
        for (name, s, js, wasm) in &rows {
            if *s != suite {
                continue;
            }
            js_table.row(vec![name.to_string(), format!("{js:.2}x")]);
            wasm_table.row(vec![name.to_string(), format!("{wasm:.2}x")]);
            js_vals.push(*js);
            wasm_vals.push(*wasm);
        }
        if js_vals.is_empty() {
            continue;
        }
        for (t, vals) in [(&mut js_table, &js_vals), (&mut wasm_table, &wasm_vals)] {
            t.row(vec![
                "geomean".into(),
                format!("{:.2}x", geomean(vals).expect("positive")),
            ]);
            t.row(vec![
                "average".into(),
                format!("{:.2}x", mean(vals).expect("non-empty")),
            ]);
        }
        cli.emit(&format!("fig10_js_{tag}"), &js_table);
        cli.emit(&format!("fig10_wasm_{tag}"), &wasm_table);
    }
    engine.finish_with(&cli, "fig10");
}
