//! §4.5 context-switch microbenchmark: JS↔Wasm boundary cost per call on
//! the three desktop browsers (the paper: Firefox ≈ 0.13× of Chrome).

use wb_core::apps::context_switch_bench;
use wb_core::report::{ratio, Table};
use wb_env::{Browser, Environment, Platform};
use wb_harness::{run_or_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let calls = 1_000;
    let mut t = Table::new(
        "§4.5: JS↔Wasm context-switch cost (desktop)",
        &["browser", "ns per boundary crossing", "relative to Chrome"],
    );
    let chrome = run_or_exit(
        "ctxswitch/Chrome",
        context_switch_bench(Environment::desktop_chrome(), calls),
    );
    for browser in Browser::ALL {
        let env = Environment::new(browser, Platform::Desktop);
        let ns = run_or_exit(browser.name(), context_switch_bench(env, calls));
        t.row(vec![
            browser.name().into(),
            format!("{:.1}", ns.0),
            ratio(ns.0 / chrome.0),
        ]);
    }
    cli.emit("ctxswitch", &t);
}
