//! Table 9: manually-written JavaScript vs Cheerp-generated JavaScript vs
//! WebAssembly — LOC, execution time and memory on desktop Chrome.

use wb_benchmarks::manual_js::all_manual;
use wb_benchmarks::InputSize;
use wb_core::report::{kilobytes, millis, Table};
use wb_core::{run_manual_js, JsSpec};
use wb_harness::{Cli, GridEngine, Run};

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);

    let rows = engine.map(all_manual(), |m| {
        // Manual implementation.
        let src = m.full_source();
        let mut spec = JsSpec::new(&src);
        spec.entry = "bench_main";
        let manual = run_manual_js(&spec).unwrap_or_else(|e| {
            eprintln!("error: {}/manual-js [{}]: {e}", m.name, e.kind());
            std::process::exit(1);
        });
        // Counterpart compiled versions at the manual benchmark's scale
        // (XS-ish fixed sizes; the paper used the default inputs).
        let counterpart = wb_benchmarks::suite::find(m.counterpart).unwrap_or_else(|| {
            eprintln!("error: {}: unknown counterpart '{}'", m.name, m.counterpart);
            std::process::exit(2);
        });
        let run = Run::new(counterpart, InputSize::S);
        let cheerp = engine.js(&run);
        let wasm = engine.wasm(&run);
        (m, manual, cheerp, wasm)
    });

    let mut t = Table::new(
        "Table 9: manually-written JS vs Cheerp JS vs Wasm (Chrome desktop)",
        &[
            "Benchmark",
            "LOC",
            "Manual ms",
            "Cheerp ms",
            "WASM ms",
            "Manual KB",
            "Cheerp KB",
            "WASM KB",
        ],
    );
    for (m, manual, cheerp, wasm) in &rows {
        t.row(vec![
            m.name.into(),
            m.loc().to_string(),
            millis(manual.time),
            millis(cheerp.time),
            millis(wasm.time),
            kilobytes(manual.memory_bytes),
            kilobytes(cheerp.memory_bytes),
            kilobytes(wasm.memory_bytes),
        ]);
    }
    cli.emit("table9", &t);
    engine.finish_with(&cli, "table9");
}
