//! Fig 9 + Tables 3/4 (Chrome) and Tables 5/6 (`--browser firefox`):
//! execution time and memory of Wasm and JS across the five input sizes.

use wb_core::report::{kilobytes, millis, ratio, Table};
use wb_core::stats::{mean, speedup_split};
use wb_harness::{Cli, GridEngine, Run};

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let env = cli.environment();
    let sizes = cli.sizes();
    let browser = env.browser.name();

    let grid: Vec<(wb_benchmarks::Benchmark, wb_benchmarks::InputSize)> = cli
        .benchmarks()
        .into_iter()
        .flat_map(|b| {
            sizes
                .iter()
                .map(move |s| (b.clone(), *s))
                .collect::<Vec<_>>()
        })
        .collect();

    let cells = engine.map(grid, |(b, size)| {
        let mut run = Run::new(b.clone(), size);
        run.env = env;
        let w = engine.wasm(&run);
        let j = engine.js(&run);
        assert_eq!(w.output, j.output, "{} {size}: outputs must agree", b.name);
        (b.name, size, w, j)
    });

    // Fig 9 per-benchmark rows.
    let mut fig = Table::new(
        &format!("Fig 9: time (ms) and memory (KB) per input size — {browser} desktop"),
        &[
            "benchmark",
            "size",
            "wasm ms",
            "js ms",
            "wasm/js time",
            "wasm KB",
            "js KB",
        ],
    );
    for (name, size, w, j) in &cells {
        fig.row(vec![
            name.to_string(),
            size.code().into(),
            millis(w.time),
            millis(j.time),
            ratio(w.time.0 / j.time.0),
            kilobytes(w.memory_bytes),
            kilobytes(j.memory_bytes),
        ]);
    }
    cli.emit(&format!("fig9_{}", browser.to_lowercase()), &fig);

    // Tables 3/5: SD/SU split per size.
    let mut split = Table::new(
        &format!("Table 3/5: {browser} execution time statistics"),
        &[
            "Input Size",
            "SD #",
            "SD gmean",
            "SU #",
            "SU gmean",
            "All gmean",
        ],
    );
    for size in &sizes {
        let pairs: Vec<(f64, f64)> = cells
            .iter()
            .filter(|(_, s, _, _)| s == size)
            .map(|(_, _, w, j)| (j.time.0, w.time.0))
            .collect();
        let s = speedup_split(&pairs).expect("non-empty grid");
        let all = if s.all_gmean >= 1.0 {
            format!("{:.2}x up", s.all_gmean)
        } else {
            format!("{:.2}x down", 1.0 / s.all_gmean)
        };
        split.row(vec![
            size.name().into(),
            s.slowdown_count.to_string(),
            format!("{:.2}x", s.slowdown_gmean),
            s.speedup_count.to_string(),
            format!("{:.2}x", s.speedup_gmean),
            all,
        ]);
    }
    cli.emit(&format!("table3_5_{}", browser.to_lowercase()), &split);

    // Tables 4/6: average memory per size.
    let mut memory = Table::new(
        &format!("Table 4/6: {browser} average memory usage (KB)"),
        &["Input Size", "JavaScript", "WebAssembly"],
    );
    for size in &sizes {
        let js_mem: Vec<f64> = cells
            .iter()
            .filter(|(_, s, _, _)| s == size)
            .map(|(_, _, _, j)| j.memory_bytes as f64)
            .collect();
        let wasm_mem: Vec<f64> = cells
            .iter()
            .filter(|(_, s, _, _)| s == size)
            .map(|(_, _, w, _)| w.memory_bytes as f64)
            .collect();
        memory.row(vec![
            size.name().into(),
            kilobytes(mean(&js_mem).expect("non-empty") as u64),
            kilobytes(mean(&wasm_mem).expect("non-empty") as u64),
        ]);
    }
    cli.emit(&format!("table4_6_{}", browser.to_lowercase()), &memory);
    engine.finish_with(&cli, "fig9");
}
