//! Fig 11: five-number summaries (min/Q1/median/Q3/max) of the
//! optimization-level ratios — execution time, code size and memory of
//! JS, Wasm and x86 at `-O1`/`-Ofast`/`-Oz` relative to `-O2`.

use wb_benchmarks::InputSize;
use wb_core::report::Table;
use wb_core::stats::five_number;
use wb_harness::{Cli, GridEngine, Run};
use wb_minic::OptLevel;

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let levels = [OptLevel::O1, OptLevel::O2, OptLevel::Ofast, OptLevel::Oz];

    let per_bench = engine.map(cli.benchmarks(), |b| {
        levels
            .iter()
            .map(|&level| {
                let mut run = Run::new(b.clone(), InputSize::M);
                run.level = level;
                let w = engine.wasm(&run);
                let j = engine.js(&run);
                let n = engine.native(&run);
                [
                    j.time.0,
                    j.code_size as f64,
                    j.memory_bytes as f64,
                    w.time.0,
                    w.code_size as f64,
                    w.memory_bytes as f64,
                    n.time.0,
                    n.code_size as f64,
                ]
            })
            .collect::<Vec<_>>()
    });

    let mut t = Table::new(
        "Fig 11: five-number summaries of opt-level ratios (vs -O2)",
        &["series", "min", "q1", "median", "q3", "max"],
    );
    let metrics = [
        ("JS Time", 0),
        ("JS CS", 1),
        ("JS Mem", 2),
        ("WASM Time", 3),
        ("WASM CS", 4),
        ("WASM Mem", 5),
        ("x86 Time", 6),
        ("x86 CS", 7),
    ];
    let level_pairs = [("O1/O2", 0usize), ("Ofast/O2", 2), ("Oz/O2", 3)];
    for (metric, mi) in metrics {
        for (label, li) in level_pairs {
            let ratios: Vec<f64> = per_bench
                .iter()
                .map(|levels| levels[li][mi] / levels[1][mi])
                .collect();
            let f = five_number(&ratios).expect("non-empty");
            t.row(vec![
                format!("{metric} {label}"),
                format!("{:.3}", f.min),
                format!("{:.3}", f.q1),
                format!("{:.3}", f.median),
                format!("{:.3}", f.q3),
                format!("{:.3}", f.max),
            ]);
        }
    }
    cli.emit("fig11", &t);
    engine.finish_with(&cli, "fig11");
}
