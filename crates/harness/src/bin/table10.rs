//! Table 10: the three real-world applications — Long.js (mul/div/rem),
//! Hyphenopoly (en-us/fr) and FFmpeg — Wasm vs JS execution time.

use wb_benchmarks::apps::{ffmpeg, hyphen, longjs};
use wb_core::apps;
use wb_core::report::{millis, Table};
use wb_env::Environment;
use wb_harness::{run_or_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let env = Environment::desktop_chrome();
    let mut t = Table::new(
        "Table 10: real-world applications (Chrome desktop)",
        &[
            "Benchmark",
            "Input",
            "WA Time (ms)",
            "JS Time (ms)",
            "Ratio",
        ],
    );

    for op in longjs::LongOp::ALL {
        let w = run_or_exit(
            &format!("longjs-{}/wasm", op.name()),
            apps::longjs_wasm(op, env),
        );
        let j = run_or_exit(
            &format!("longjs-{}/js", op.name()),
            apps::longjs_js(op, env),
        );
        t.row(vec![
            format!("Long.js {}", op.name()),
            op.input_desc().into(),
            millis(w.time),
            millis(j.time),
            format!("{:.3}", w.time.0 / j.time.0),
        ]);
    }
    for lang in hyphen::Lang::ALL {
        let w = run_or_exit(
            &format!("hyphen-{}/wasm", lang.name()),
            apps::hyphen_wasm(lang, env),
        );
        let j = run_or_exit(
            &format!("hyphen-{}/js", lang.name()),
            apps::hyphen_js(lang, env),
        );
        assert_eq!(w.output, j.output, "hyphenation must agree");
        t.row(vec![
            format!("Hyphenopoly {}", lang.name()),
            format!("{} KB generated text", hyphen::TEXT_BYTES / 1024),
            millis(w.time),
            millis(j.time),
            format!("{:.3}", w.time.0 / j.time.0),
        ]);
    }
    {
        let w = run_or_exit("ffmpeg/wasm", apps::ffmpeg_wasm(env));
        let j = run_or_exit("ffmpeg/js", apps::ffmpeg_js(env));
        t.row(vec![
            "FFmpeg mp4 to avi".into(),
            format!(
                "{} MB stream, {} workers",
                ffmpeg::STREAM_BYTES / (1024 * 1024),
                ffmpeg::WORKER_COUNT
            ),
            millis(w.time),
            millis(j.time),
            format!("{:.3}", w.time.0 / j.time.0),
        ]);
    }
    cli.emit("table10", &t);
}
