//! Table 12 (Appendix D): arithmetic operations executed by the Long.js
//! programs — JS vs Wasm, by operation kind.

use wb_benchmarks::apps::longjs::LongOp;
use wb_core::apps::{longjs_js, longjs_wasm};
use wb_core::report::Table;
use wb_env::{ArithCounts, Environment};
use wb_harness::{run_or_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let env = Environment::desktop_chrome();
    let mut t = Table::new(
        "Table 12: Long.js arithmetic operation counts",
        &[
            "Benchmark",
            "JS/WASM",
            "ADD",
            "MUL",
            "DIV",
            "REM",
            "SHIFT",
            "AND",
            "OR",
            "Total",
        ],
    );
    let fmt = |c: &ArithCounts| -> Vec<String> {
        c.columns()
            .iter()
            .map(|v| v.to_string())
            .chain(std::iter::once(c.total().to_string()))
            .collect()
    };
    for op in LongOp::ALL {
        let j = run_or_exit(&format!("longjs-{}/js", op.name()), longjs_js(op, env));
        let w = run_or_exit(&format!("longjs-{}/wasm", op.name()), longjs_wasm(op, env));
        let mut row = vec![op.name().to_string(), "JS".into()];
        row.extend(fmt(&j.arith));
        t.row(row);
        let mut row = vec![op.name().to_string(), "WASM".into()];
        row.extend(fmt(&w.arith));
        t.row(row);
    }
    cli.emit("table12", &t);
}
