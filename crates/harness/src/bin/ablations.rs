//! Ablation study: quantify each §4.2 mechanism's contribution by
//! toggling it off and re-measuring — the design-choice ablations called
//! out in DESIGN.md.
//!
//! * **vectorize-scalarization**: `-O2` with vectorization vs the same
//!   pipeline without `-vectorize-loops` (what a Wasm-aware `-O2` would
//!   do), on the Wasm target;
//! * **constant rematerialization**: `-O2` Wasm emission with and without
//!   the `i32.const; f64.convert` encoding (Fig 8);
//! * **dead-store bug**: `-Ofast` Wasm with and without the LLVM#37449
//!   emulation (Fig 7), on ADPCM, where the paper observed it.

use wb_benchmarks::InputSize;
use wb_core::host::standard_imports;
use wb_core::report::{ratio, Table};
use wb_env::calibration;
use wb_harness::Cli;
use wb_minic::backend::wasm::{emit_wasm, WasmEmitOptions};
use wb_minic::passes;
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{Instance, WasmVmConfig};

/// Compile with a hand-rolled pipeline and measure the Wasm run.
fn measure(
    source: &str,
    defines: &[(String, String)],
    level: OptLevel,
    vectorize: bool,
    remat: bool,
    bug_emulation: bool,
) -> (f64, u64) {
    let mut compiler = Compiler::cheerp().opt_level(level).heap_limit(256 << 20);
    for (k, v) in defines {
        compiler = compiler.define(k, v.clone());
    }
    let (mut hir, _) = compiler.frontend(source).expect("frontend");

    // Re-create the level's pipeline with the ablation toggles.
    passes::const_fold(&mut hir);
    passes::const_prop(&mut hir);
    passes::const_fold(&mut hir);
    passes::dce(&mut hir);
    passes::globalopt(&mut hir, bug_emulation && level == OptLevel::Ofast);
    match level {
        OptLevel::O1 => passes::const_hoist(&mut hir),
        _ => {
            passes::inline(&mut hir, 12);
            if vectorize {
                passes::vectorize_loops(&mut hir);
            }
            passes::shrinkwrap(&mut hir);
            if level == OptLevel::Ofast {
                passes::fast_math(&mut hir);
            }
        }
    }
    passes::const_fold(&mut hir);
    passes::dce(&mut hir);

    let opts = WasmEmitOptions {
        profile: wb_env::CompilerProfile::cheerp(),
        heap_limit_bytes: Some(256 << 20),
        remat_int_consts: remat,
    };
    let module = emit_wasm(&hir, &opts).expect("emit");
    wb_wasm::validate(&module).expect("valid");
    let bytes = wb_wasm::encode_module(&module);
    let mut config = WasmVmConfig::reference();
    config.exec_overhead = calibration::toolchain_exec_overhead(wb_env::Toolchain::Cheerp);
    let mut inst = Instance::instantiate(&bytes, config, standard_imports(hir.strings.clone()))
        .expect("instantiate");
    inst.invoke("bench_main", &[]).expect("run");
    (inst.report().total.0, bytes.len() as u64)
}

fn main() {
    let cli = Cli::from_env();
    let mut t = Table::new(
        "Ablations: each §4.2 mechanism's contribution (Wasm target)",
        &[
            "mechanism",
            "benchmark",
            "with (ms)",
            "without (ms)",
            "with/without time",
            "size ratio",
        ],
    );

    // 1. Vectorize-then-scalarize on a hot float kernel.
    let gemm = wb_benchmarks::suite::find("gemm").expect("gemm");
    let defines = gemm.defines(InputSize::M);
    let (with_t, with_s) = measure(gemm.source, &defines, OptLevel::O2, true, true, false);
    let (wo_t, wo_s) = measure(gemm.source, &defines, OptLevel::O2, false, true, false);
    t.row(vec![
        "vectorize+scalarize".into(),
        "gemm".into(),
        format!("{:.3}", with_t / 1e6),
        format!("{:.3}", wo_t / 1e6),
        ratio(with_t / wo_t),
        ratio(with_s as f64 / wo_s as f64),
    ]);

    // 2. Constant rematerialization (Fig 8) on seidel-2d, whose inner
    // loop divides by the integral constant 9.0 every iteration.
    let cov = wb_benchmarks::suite::find("seidel-2d").expect("seidel-2d");
    let defines = cov.defines(InputSize::M);
    let (with_t, with_s) = measure(cov.source, &defines, OptLevel::O2, true, true, false);
    let (wo_t, wo_s) = measure(cov.source, &defines, OptLevel::O2, true, false, false);
    t.row(vec![
        "const remat (Fig 8)".into(),
        "seidel-2d".into(),
        format!("{:.3}", with_t / 1e6),
        format!("{:.3}", wo_t / 1e6),
        ratio(with_t / wo_t),
        ratio(with_s as f64 / wo_s as f64),
    ]);

    // 3. Dead-store bug emulation (Fig 7) on ADPCM at -Ofast.
    let adpcm = wb_benchmarks::suite::find("ADPCM").expect("ADPCM");
    let defines = adpcm.defines(InputSize::M);
    let (with_t, with_s) = measure(adpcm.source, &defines, OptLevel::Ofast, true, true, true);
    let (wo_t, wo_s) = measure(adpcm.source, &defines, OptLevel::Ofast, true, true, false);
    t.row(vec![
        "dead-store bug (Fig 7)".into(),
        "ADPCM".into(),
        format!("{:.3}", with_t / 1e6),
        format!("{:.3}", wo_t / 1e6),
        ratio(with_t / wo_t),
        ratio(with_s as f64 / wo_s as f64),
    ]);

    cli.emit("ablations", &t);
}
