//! Fig 5: execution time and code size of WebAssembly and JavaScript at
//! `-O1`, `-Ofast` and `-Oz`, relative to `-O2`, per benchmark
//! (desktop Chrome, default = medium input).

use wb_benchmarks::InputSize;
use wb_core::report::{ratio, Table};
use wb_harness::{Cli, GridEngine, Run};
use wb_minic::OptLevel;

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let benchmarks = cli.benchmarks();
    let levels = [OptLevel::O1, OptLevel::O2, OptLevel::Ofast, OptLevel::Oz];

    let rows = engine.map(benchmarks, |b| {
        let mut wasm_time = Vec::new();
        let mut wasm_size = Vec::new();
        let mut js_time = Vec::new();
        let mut js_size = Vec::new();
        for level in levels {
            let mut run = Run::new(b.clone(), InputSize::M);
            run.level = level;
            let w = engine.wasm(&run);
            wasm_time.push(w.time.0);
            wasm_size.push(w.code_size as f64);
            let j = engine.js(&run);
            js_time.push(j.time.0);
            js_size.push(j.code_size as f64);
        }
        (b.name, wasm_time, wasm_size, js_time, js_size)
    });

    // Relative to -O2 (index 1), like the figure's y-axis.
    let rel = |v: &[f64], i: usize| v[i] / v[1];
    let mut time_table = Table::new(
        "Fig 5 (top): execution time relative to -O2 (Chrome desktop, M input)",
        &[
            "benchmark",
            "wasm O1/O2",
            "wasm Ofast/O2",
            "wasm Oz/O2",
            "js O1/O2",
            "js Ofast/O2",
            "js Oz/O2",
        ],
    );
    let mut size_table = Table::new(
        "Fig 5 (bottom): code size relative to -O2",
        &[
            "benchmark",
            "wasm O1/O2",
            "wasm Ofast/O2",
            "wasm Oz/O2",
            "js O1/O2",
            "js Ofast/O2",
            "js Oz/O2",
        ],
    );
    for (name, wt, ws, jt, js) in &rows {
        time_table.row(vec![
            name.to_string(),
            ratio(rel(wt, 0)),
            ratio(rel(wt, 2)),
            ratio(rel(wt, 3)),
            ratio(rel(jt, 0)),
            ratio(rel(jt, 2)),
            ratio(rel(jt, 3)),
        ]);
        size_table.row(vec![
            name.to_string(),
            ratio(rel(ws, 0)),
            ratio(rel(ws, 2)),
            ratio(rel(ws, 3)),
            ratio(rel(js, 0)),
            ratio(rel(js, 2)),
            ratio(rel(js, 3)),
        ]);
    }
    cli.emit("fig5_time", &time_table);
    cli.emit("fig5_code_size", &size_table);

    // Per-level winner census (§4.2.1's "no silver bullet" paragraph).
    let mut fastest = [0usize; 4];
    for (_, wt, _, _, _) in &rows {
        let mut best = 0;
        for i in 1..4 {
            if wt[i] < wt[best] {
                best = i;
            }
        }
        fastest[best] += 1;
    }
    let mut census = Table::new(
        "Fastest Wasm binary per optimization level (§4.2.1)",
        &["level", "benchmarks fastest"],
    );
    for (i, level) in levels.iter().enumerate() {
        census.row(vec![level.to_string(), fastest[i].to_string()]);
    }
    cli.emit("fig5_fastest_census", &census);
    engine.finish_with(&cli, "fig5");
}
