//! Extension beyond the paper's grid: sweep **all seven** optimization
//! levels (the paper dropped `-O0`, `-O3`/`-O4` and `-Os` as
//! unrepresentative, §3.2) over a representative benchmark slice, so the
//! full Fig 1 design space is visible.

use wb_benchmarks::InputSize;
use wb_core::report::{ratio, Table};
use wb_harness::{Cli, GridEngine, Run};
use wb_minic::OptLevel;

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let names = ["gemm", "jacobi-2d", "durbin", "AES", "SHA"];
    let benchmarks: Vec<_> = names
        .iter()
        .filter_map(|n| wb_benchmarks::suite::find(n))
        .filter(|b| {
            cli.get("filter")
                .map(|f| b.name.to_lowercase().contains(&f.to_lowercase()))
                .unwrap_or(true)
        })
        .collect();

    let rows = engine.map(benchmarks, |b| {
        let mut wasm = Vec::new();
        let mut size = Vec::new();
        for level in OptLevel::ALL {
            let mut run = Run::new(b.clone(), InputSize::M);
            run.level = level;
            let w = engine.wasm(&run);
            wasm.push(w.time.0);
            size.push(w.code_size as f64);
        }
        (b.name, wasm, size)
    });

    let base = OptLevel::ALL
        .iter()
        .position(|l| *l == OptLevel::O2)
        .expect("O2 in ALL");
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(OptLevel::ALL.iter().map(|l| format!("{l}/‑O2")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut time_table = Table::new(
        "Extended levels: Wasm execution time relative to -O2 (all 7 levels)",
        &header_refs,
    );
    let mut size_table = Table::new(
        "Extended levels: Wasm code size relative to -O2",
        &header_refs,
    );
    for (name, wasm, size) in &rows {
        let mut trow = vec![name.to_string()];
        let mut srow = vec![name.to_string()];
        for i in 0..OptLevel::ALL.len() {
            trow.push(ratio(wasm[i] / wasm[base]));
            srow.push(ratio(size[i] / size[base]));
        }
        time_table.row(trow);
        size_table.row(srow);
    }
    cli.emit("levels_extended_time", &time_table);
    cli.emit("levels_extended_size", &size_table);
    engine.finish_with(&cli, "levels_extended");
}
