//! Fig 6: execution time and code size of the x86 (native control) build
//! at `-O1`, `-Ofast` and `-Oz`, relative to `-O2`.

use wb_benchmarks::InputSize;
use wb_core::report::{ratio, Table};
use wb_harness::{Cli, GridEngine, Run};
use wb_minic::OptLevel;

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let levels = [OptLevel::O1, OptLevel::O2, OptLevel::Ofast, OptLevel::Oz];

    let rows = engine.map(cli.benchmarks(), |b| {
        let mut time = Vec::new();
        let mut size = Vec::new();
        for level in levels {
            let mut run = Run::new(b.clone(), InputSize::M);
            run.level = level;
            let n = engine.native(&run);
            time.push(n.time.0);
            size.push(n.code_size as f64);
        }
        (b.name, time, size)
    });

    let mut time_table = Table::new(
        "Fig 6 (top): x86 execution time relative to -O2",
        &["benchmark", "O1/O2", "Ofast/O2", "Oz/O2"],
    );
    let mut size_table = Table::new(
        "Fig 6 (bottom): x86 code size relative to -O2",
        &["benchmark", "O1/O2", "Ofast/O2", "Oz/O2"],
    );
    for (name, t, s) in &rows {
        time_table.row(vec![
            name.to_string(),
            ratio(t[0] / t[1]),
            ratio(t[2] / t[1]),
            ratio(t[3] / t[1]),
        ]);
        size_table.row(vec![
            name.to_string(),
            ratio(s[0] / s[1]),
            ratio(s[2] / s[1]),
            ratio(s[3] / s[1]),
        ]);
    }
    cli.emit("fig6_time", &time_table);
    cli.emit("fig6_code_size", &size_table);
    engine.finish_with(&cli, "fig6");
}
