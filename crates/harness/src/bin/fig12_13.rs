//! Figs 12/13 + Table 8: execution time and memory of Wasm and JS across
//! the six deployment settings (Chrome/Firefox/Edge × desktop/mobile).

use wb_benchmarks::InputSize;
use wb_core::report::{kilobytes, millis, ratio, Table};
use wb_core::stats::mean;
use wb_core::Measurement;
use wb_env::Environment;
use wb_harness::{Cli, GridEngine, Run};

/// One measured grid cell: (benchmark name, environment, wasm, js).
type Cell = (&'static str, Environment, Measurement, Measurement);

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let envs = Environment::all_six();

    let grid: Vec<(wb_benchmarks::Benchmark, Environment)> = cli
        .benchmarks()
        .into_iter()
        .flat_map(|b| {
            envs.iter()
                .map(move |e| (b.clone(), *e))
                .collect::<Vec<_>>()
        })
        .collect();

    let cells = engine.map(grid, |(b, env)| {
        let mut run = Run::new(b.clone(), InputSize::M);
        run.env = env;
        let w = engine.wasm(&run);
        let j = engine.js(&run);
        (b.name, env, w, j)
    });

    // Figs 12/13 per-benchmark rows.
    let mut fig = Table::new(
        "Figs 12/13: per-benchmark time (ms) and memory (KB), six environments (-O2, M input)",
        &[
            "benchmark",
            "environment",
            "wasm ms",
            "js ms",
            "wasm KB",
            "js KB",
        ],
    );
    for (name, env, w, j) in &cells {
        fig.row(vec![
            name.to_string(),
            env.label(),
            millis(w.time),
            millis(j.time),
            kilobytes(w.memory_bytes),
            kilobytes(j.memory_bytes),
        ]);
    }
    cli.emit("fig12_13", &fig);

    // Table 8: arithmetic averages per environment.
    let mut t8 = Table::new(
        "Table 8: arithmetic averages across 41 benchmarks",
        &["metric", "Chrome", "Firefox", "Edge"],
    );
    let avg = |env: Environment, f: &dyn Fn(&Cell) -> f64| -> f64 {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|(_, e, _, _)| *e == env)
            .map(f)
            .collect();
        mean(&vals).expect("non-empty")
    };
    for (platform, tag) in [
        (wb_env::Platform::Desktop, "D."),
        (wb_env::Platform::Mobile, "M."),
    ] {
        for (metric, getter) in [
            ("JS Exec. Time (ms)", 0),
            ("WASM Exec. Time (ms)", 1),
            ("JS Memory (KB)", 2),
            ("WASM Memory (KB)", 3),
        ] {
            let mut row = vec![format!("{tag} {metric}")];
            for browser in wb_env::Browser::ALL {
                let env = Environment::new(browser, platform);
                let v = match getter {
                    0 => avg(env, &|c| c.3.time.as_millis()),
                    1 => avg(env, &|c| c.2.time.as_millis()),
                    2 => avg(env, &|c| c.3.memory_bytes as f64 / 1024.0),
                    _ => avg(env, &|c| c.2.memory_bytes as f64 / 1024.0),
                };
                row.push(format!("{v:.2}"));
            }
            t8.row(row);
        }
    }
    cli.emit("table8", &t8);

    // §4.5 relative-time summary (the paper's headline ratios).
    let mut rel = Table::new(
        "§4.5: execution time relative to Chrome (same platform)",
        &["platform", "language", "Chrome", "Firefox", "Edge"],
    );
    for platform in wb_env::Platform::ALL {
        for (lang, time_of) in [("JS", 0usize), ("WASM", 1usize)] {
            let base = {
                let env = Environment::new(wb_env::Browser::Chrome, platform);
                match time_of {
                    0 => avg(env, &|c| c.3.time.as_millis()),
                    _ => avg(env, &|c| c.2.time.as_millis()),
                }
            };
            let mut row = vec![platform.name().to_string(), lang.to_string()];
            for browser in wb_env::Browser::ALL {
                let env = Environment::new(browser, platform);
                let v = match time_of {
                    0 => avg(env, &|c| c.3.time.as_millis()),
                    _ => avg(env, &|c| c.2.time.as_millis()),
                };
                row.push(ratio(v / base));
            }
            rel.row(row);
        }
    }
    cli.emit("table8_relative", &rel);
    engine.finish_with(&cli, "fig12_13");
}
