//! Table 7: Wasm performance with three tier configurations on Chrome
//! and Firefox — the execution-speed ratio of the default two-tier
//! setting to basic-only and to optimizing-only.

use wb_benchmarks::{InputSize, Suite};
use wb_core::report::{ratio, Table};
use wb_core::stats::{geomean, mean};
use wb_env::{Browser, Environment, Platform, TierPolicy};
use wb_harness::{Cli, GridEngine, Run};

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let chrome = Environment::desktop_chrome();
    let firefox = Environment::new(Browser::Firefox, Platform::Desktop);

    // ratio = time(single-tier) / time(default): > 1 means default faster.
    let rows = engine.map(cli.benchmarks(), |b| {
        let measure = |env: Environment, policy: TierPolicy| {
            let mut run = Run::new(b.clone(), InputSize::M);
            run.env = env;
            run.tier_policy = policy;
            engine.wasm(&run).time.0
        };
        let mut out = Vec::new();
        for env in [chrome, firefox] {
            let default = measure(env, TierPolicy::Default);
            let basic = measure(env, TierPolicy::BasicOnly);
            let optimizing = measure(env, TierPolicy::OptimizingOnly);
            out.push((basic / default, optimizing / default));
        }
        (b.name, b.suite, out)
    });

    let mut t = Table::new(
        "Table 7: Wasm speed ratio of default tiers to basic/optimizing-only",
        &[
            "Benchmark",
            "Metric",
            "LiftOff",
            "Baseline",
            "TurboFan",
            "Ion",
        ],
    );
    let mut overall: [Vec<f64>; 4] = Default::default();
    for (suite, label) in [
        (Some(Suite::PolyBenchC), "PolyBenchC"),
        (Some(Suite::CHStone), "CHStone"),
        (None, "Overall"),
    ] {
        let mut cols: [Vec<f64>; 4] = Default::default();
        for (_, s, vals) in &rows {
            if suite.is_some() && Some(*s) != suite {
                continue;
            }
            cols[0].push(vals[0].0); // Chrome basic-only (LiftOff)
            cols[1].push(vals[1].0); // Firefox basic-only (Baseline)
            cols[2].push(vals[0].1); // Chrome optimizing-only (TurboFan)
            cols[3].push(vals[1].1); // Firefox optimizing-only (Ion)
        }
        if cols[0].is_empty() {
            continue;
        }
        if suite.is_none() {
            overall = cols.clone();
        }
        t.row(vec![
            label.into(),
            "Geo. mean".into(),
            ratio(geomean(&cols[0]).expect("positive")),
            ratio(geomean(&cols[1]).expect("positive")),
            ratio(geomean(&cols[2]).expect("positive")),
            ratio(geomean(&cols[3]).expect("positive")),
        ]);
        t.row(vec![
            label.into(),
            "Average".into(),
            ratio(mean(&cols[0]).expect("non-empty")),
            ratio(mean(&cols[1]).expect("non-empty")),
            ratio(mean(&cols[2]).expect("non-empty")),
            ratio(mean(&cols[3]).expect("non-empty")),
        ]);
    }
    cli.emit("table7", &t);
    let _ = overall;
    engine.finish_with(&cli, "table7");
}
