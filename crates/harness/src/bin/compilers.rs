//! §4.2.2: Cheerp vs Emscripten — execution time and memory of the 41
//! benchmarks compiled by both toolchains at `-O2` on desktop Chrome.

use wb_benchmarks::InputSize;
use wb_core::report::{kilobytes, millis, ratio, Table};
use wb_core::stats::geomean;
use wb_env::Toolchain;
use wb_harness::{Cli, GridEngine, Run};

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);

    let rows = engine.map(cli.benchmarks(), |b| {
        let cheerp = Run::new(b.clone(), InputSize::M).wasm();
        let mut em = Run::new(b.clone(), InputSize::M);
        em.toolchain = Toolchain::Emscripten;
        let emscripten = engine.wasm(&em);
        (b.name, cheerp, emscripten)
    });

    let mut t = Table::new(
        "§4.2.2: Cheerp vs Emscripten (-O2, Chrome desktop, M input)",
        &[
            "benchmark",
            "cheerp ms",
            "emscripten ms",
            "time ratio",
            "cheerp KB",
            "emscripten KB",
        ],
    );
    let mut time_ratios = Vec::new();
    let mut mem_ratios = Vec::new();
    for (name, c, e) in &rows {
        time_ratios.push(c.time.0 / e.time.0);
        mem_ratios.push(e.memory_bytes as f64 / c.memory_bytes as f64);
        t.row(vec![
            name.to_string(),
            millis(c.time),
            millis(e.time),
            ratio(c.time.0 / e.time.0),
            kilobytes(c.memory_bytes),
            kilobytes(e.memory_bytes),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.2}x faster (Emscripten)",
            geomean(&time_ratios).expect("positive")
        ),
        "-".into(),
        format!(
            "{:.2}x more memory (Emscripten)",
            geomean(&mem_ratios).expect("positive")
        ),
    ]);
    cli.emit("compilers", &t);
    engine.finish_with(&cli, "compilers");
}
