//! Wall-clock self-benchmark of the grid engine itself: run the same
//! benchmark × environment grid with and without the artifact cache and
//! report the speedup. This measures *our* engineering (compile-once +
//! pre-decoded modules), not the paper's virtual numbers — which are
//! asserted bit-identical between the two passes.
//!
//! Writes `BENCH_selfbench.json` (repo root by default, `--out <dir>`
//! to relocate) so successive PRs can track the perf trajectory.

use std::time::Instant;
use wb_benchmarks::InputSize;
use wb_core::ArtifactCache;
use wb_env::{Environment, TierPolicy};
use wb_harness::{Cli, Run};

/// The compile-bound slice of the suite: kernels whose XS-dataset
/// execution is cheap relative to the MiniC pipeline + module
/// preparation, i.e. the cells where grid wall-clock is compile-
/// dominated (the exec-dominated outliers — AES, MIPS, BLOWFISH —
/// measure the interpreter, not the cache).
const COMPILE_BOUND: &[&str] = &[
    "DFADD", "DFMUL", "DFDIV", "DFSIN", "ADPCM", "SHA", "MOTION", "nussinov", "cholesky",
    "ludcmp", "covariance", "correlation", "durbin", "trisolv", "lu", "adi", "jacobi-1d", "trmm",
];

fn main() {
    let cli = Cli::from_env();
    // Each artifact is executed in 6 environments x 2 tier policies —
    // the fig12_13 x table7 shape, where one compile serves 12 cells.
    let benchmarks: Vec<_> = wb_benchmarks::all_benchmarks()
        .into_iter()
        .filter(|b| COMPILE_BOUND.contains(&b.name))
        .collect();
    let envs = Environment::all_six();
    let grid: Vec<Run> = benchmarks
        .iter()
        .flat_map(|b| {
            envs.iter().flat_map(|&env| {
                [TierPolicy::Default, TierPolicy::OptimizingOnly].map(|tier| {
                    let mut run = Run::new(b.clone(), InputSize::XS);
                    run.env = env;
                    run.tier_policy = tier;
                    run
                })
            })
        })
        .collect();
    let cells = grid.len();
    eprintln!(
        "[selfbench] {} benchmarks x {} envs x 2 tier policies = {} wasm cells",
        benchmarks.len(),
        envs.len(),
        cells
    );

    // Sequential on purpose: wall-clock ratios, not throughput.
    let t0 = Instant::now();
    let uncached: Vec<_> = grid.iter().map(|run| run.wasm_with(None)).collect();
    let uncached_wall = t0.elapsed();

    let cache = ArtifactCache::new();
    let t1 = Instant::now();
    let cached: Vec<_> = grid
        .iter()
        .map(|run| run.wasm_with(Some(&cache)))
        .collect();
    let cached_wall = t1.elapsed();

    // The cache must not change a single measured bit.
    for (u, c) in uncached.iter().zip(&cached) {
        assert_eq!(u.time.0.to_bits(), c.time.0.to_bits(), "virtual time");
        assert_eq!(u.memory_bytes, c.memory_bytes, "memory");
        assert_eq!(u.output, c.output, "output");
    }

    let stats = cache.stats();
    let speedup = uncached_wall.as_secs_f64() / cached_wall.as_secs_f64();
    eprintln!(
        "[selfbench] uncached {:.3}s, cached {:.3}s -> {speedup:.2}x ({} hits / {} misses)",
        uncached_wall.as_secs_f64(),
        cached_wall.as_secs_f64(),
        stats.hits,
        stats.misses
    );

    let json = format!(
        "{{\n  \"bench\": \"selfbench\",\n  \"cells\": {cells},\n  \"runs_per_pass\": {},\n  \"uncached_s\": {:.6},\n  \"cached_s\": {:.6},\n  \"speedup\": {:.3},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_bytes_saved\": {},\n  \"measurements_bit_identical\": true\n}}\n",
        cells,
        uncached_wall.as_secs_f64(),
        cached_wall.as_secs_f64(),
        speedup,
        stats.hits,
        stats.misses,
        stats.bytes_saved
    );
    let dir = std::path::PathBuf::from(cli.get("out").unwrap_or("."));
    std::fs::create_dir_all(&dir).expect("out dir");
    let path = dir.join("BENCH_selfbench.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("[wrote {}]", path.display());
}
