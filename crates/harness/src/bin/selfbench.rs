//! Wall-clock self-benchmark of the grid engine itself: run the same
//! benchmark × environment grid with and without the artifact cache and
//! report the speedup. This measures *our* engineering (compile-once +
//! pre-decoded modules), not the paper's virtual numbers — which are
//! asserted bit-identical between the two passes.
//!
//! Writes `BENCH_selfbench.json` (repo root by default, `--out <dir>`
//! to relocate) so successive PRs can track the perf trajectory, and
//! `BENCH_vmexec.json` with raw VM throughput (virtual ops retired per
//! host second, per VM, fused engine vs plain per-op reference
//! interpreter) over the exec-dominated kernels the cache section
//! deliberately excludes.

use std::time::Instant;
use wb_benchmarks::InputSize;
use wb_core::{ArtifactCache, Measurement};
use wb_env::{Environment, TierPolicy};
use wb_harness::{Cli, Run};

/// The compile-bound slice of the suite: kernels whose XS-dataset
/// execution is cheap relative to the MiniC pipeline + module
/// preparation, i.e. the cells where grid wall-clock is compile-
/// dominated (the exec-dominated outliers — AES, MIPS, BLOWFISH —
/// measure the interpreter, not the cache).
const COMPILE_BOUND: &[&str] = &[
    "DFADD",
    "DFMUL",
    "DFDIV",
    "DFSIN",
    "ADPCM",
    "SHA",
    "MOTION",
    "nussinov",
    "cholesky",
    "ludcmp",
    "covariance",
    "correlation",
    "durbin",
    "trisolv",
    "lu",
    "adi",
    "jacobi-1d",
    "trmm",
];

fn main() {
    let cli = Cli::from_env();
    // Each artifact is executed in 6 environments x 2 tier policies —
    // the fig12_13 x table7 shape, where one compile serves 12 cells.
    let benchmarks: Vec<_> = wb_benchmarks::all_benchmarks()
        .into_iter()
        .filter(|b| COMPILE_BOUND.contains(&b.name))
        .collect();
    let envs = Environment::all_six();
    let grid: Vec<Run> = benchmarks
        .iter()
        .flat_map(|b| {
            envs.iter().flat_map(|&env| {
                [TierPolicy::Default, TierPolicy::OptimizingOnly].map(|tier| {
                    let mut run = Run::new(b.clone(), InputSize::XS);
                    run.env = env;
                    run.tier_policy = tier;
                    run
                })
            })
        })
        .collect();
    let cells = grid.len();
    eprintln!(
        "[selfbench] {} benchmarks x {} envs x 2 tier policies = {} wasm cells",
        benchmarks.len(),
        envs.len(),
        cells
    );

    // Warm up the process before timing: the first handful of cells pay
    // one-time costs (allocator growth, lazy statics, CPU frequency
    // ramp) that belong to neither pass.
    for run in grid.iter().take(24) {
        run.wasm_with(None);
    }

    // Sequential on purpose (wall-clock ratios, not throughput), and
    // best-of-3 per pass: each pass is ~0.1s, short enough that one
    // scheduler hiccup skews the ratio.
    let mut uncached = Vec::new();
    let mut uncached_wall = std::time::Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        uncached = grid.iter().map(|run| run.wasm_with(None)).collect();
        uncached_wall = uncached_wall.min(t0.elapsed());
    }

    let cache = ArtifactCache::new();
    let mut cached = Vec::new();
    let mut cached_wall = std::time::Duration::MAX;
    for _ in 0..3 {
        let t1 = Instant::now();
        cached = grid.iter().map(|run| run.wasm_with(Some(&cache))).collect();
        cached_wall = cached_wall.min(t1.elapsed());
    }

    // The cache must not change a single measured bit.
    for (u, c) in uncached.iter().zip(&cached) {
        assert_eq!(u.time.0.to_bits(), c.time.0.to_bits(), "virtual time");
        assert_eq!(u.memory_bytes, c.memory_bytes, "memory");
        assert_eq!(u.output, c.output, "output");
    }

    let stats = cache.stats();
    let speedup = uncached_wall.as_secs_f64() / cached_wall.as_secs_f64();
    eprintln!(
        "[selfbench] uncached {:.3}s, cached {:.3}s -> {speedup:.2}x ({} hits / {} misses)",
        uncached_wall.as_secs_f64(),
        cached_wall.as_secs_f64(),
        stats.hits,
        stats.misses
    );

    let json = format!(
        "{{\n  \"bench\": \"selfbench\",\n  \"cells\": {cells},\n  \"runs_per_pass\": {},\n  \"uncached_s\": {:.6},\n  \"cached_s\": {:.6},\n  \"speedup\": {:.3},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_bytes_saved\": {},\n  \"measurements_bit_identical\": true\n}}\n",
        cells,
        uncached_wall.as_secs_f64(),
        cached_wall.as_secs_f64(),
        speedup,
        stats.hits,
        stats.misses,
        stats.bytes_saved
    );
    let dir = std::path::PathBuf::from(cli.get("out").unwrap_or("."));
    std::fs::create_dir_all(&dir).expect("out dir");
    let path = dir.join("BENCH_selfbench.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("[wrote {}]", path.display());

    vmexec(&dir);
    analyze_bench(&dir);
}

/// Wall-clock of the full static-verification sweep (`wb analyze --all`):
/// IR verification of every kernel at every level for every target, a
/// type-check of every emitted Wasm module, the fusion audit of both VMs
/// and the corpus lints. Tracked so the verification layer's cost stays
/// visible as the corpus and pass pipeline grow.
fn analyze_bench(dir: &std::path::Path) {
    let cfg = wb_analysis::AnalysisConfig::full();
    let t0 = Instant::now();
    let report = wb_analysis::analyze(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    let checks = report.ir.len() + report.wasm.len() + report.fusion.len();
    assert!(report.ok(), "analysis failures: {:?}", report.failures());
    eprintln!(
        "[analyze] {checks} checks, {} lint finding(s), {wall:.3}s",
        report.lints.len()
    );
    let json = format!(
        "{{\n  \"bench\": \"analyze\",\n  \"checks\": {checks},\n  \"ir_checks\": {},\n  \"wasm_checks\": {},\n  \"fusion_checks\": {},\n  \"lint_findings\": {},\n  \"wall_s\": {wall:.6},\n  \"ok\": {}\n}}\n",
        report.ir.len(),
        report.wasm.len(),
        report.fusion.len(),
        report.lints.len(),
        report.ok()
    );
    let path = dir.join("BENCH_analyze.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("[wrote {}]", path.display());
}

/// The exec-dominated slice: kernels whose grid wall-clock is spent
/// retiring VM operations, not compiling — exactly where the fused
/// micro-op engines earn their keep.
const EXEC_BOUND: &[&str] = &["AES", "MIPS", "BLOWFISH", "gemm", "2mm", "floyd-warshall"];

/// Total virtual ops retired in a pass (sum over all op classes).
fn retired_ops(measurements: &[Measurement]) -> u64 {
    measurements
        .iter()
        .map(|m| m.counts.0.iter().sum::<u64>())
        .sum()
}

/// Raw VM throughput, fused vs reference: run the exec-bound kernels
/// through a warm artifact cache (so host wall-clock is execution, not
/// compilation) on both engines, per VM, and report virtual ops per
/// host second. The virtual measurements are asserted bit-identical
/// between the engines — same discipline as the cache section above.
fn vmexec(dir: &std::path::Path) {
    let benchmarks: Vec<_> = wb_benchmarks::all_benchmarks()
        .into_iter()
        .filter(|b| EXEC_BOUND.contains(&b.name))
        .collect();
    let grid: Vec<Run> = benchmarks
        .iter()
        .map(|b| Run::new(b.clone(), InputSize::S))
        .collect();
    let cache = ArtifactCache::new();

    let mut rows = Vec::new();
    let mut all_identical = true;
    for backend in ["wasm", "js"] {
        // Best-of-N: the passes are short, so take the fastest of a few
        // repetitions to shed scheduler noise (the virtual measurements
        // are identical on every repetition by construction).
        let run_pass = |reference_exec: bool| -> (Vec<Measurement>, f64) {
            let cells: Vec<Run> = grid
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.reference_exec = reference_exec;
                    r
                })
                .collect();
            let one_pass = || -> Vec<Measurement> {
                cells
                    .iter()
                    .map(|r| {
                        if backend == "wasm" {
                            r.wasm_with(Some(&cache))
                        } else {
                            r.js_with(Some(&cache))
                        }
                    })
                    .collect()
            };
            // Warm the artifact cache outside the timed region.
            let mut ms = one_pass();
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                ms = one_pass();
                best = best.min(t.elapsed().as_secs_f64());
            }
            (ms, best)
        };
        let (reference, reference_wall) = run_pass(true);
        let (fused, fused_wall) = run_pass(false);
        for (f, r) in fused.iter().zip(&reference) {
            all_identical &= f.time.0.to_bits() == r.time.0.to_bits()
                && f.counts.0 == r.counts.0
                && f.output == r.output;
        }
        let ops = retired_ops(&fused);
        let fused_tput = ops as f64 / fused_wall;
        let reference_tput = ops as f64 / reference_wall;
        eprintln!(
            "[vmexec] {backend}: {ops} virtual ops; fused {:.1}M ops/s, reference {:.1}M ops/s ({:.2}x)",
            fused_tput / 1e6,
            reference_tput / 1e6,
            fused_tput / reference_tput
        );
        rows.push(format!(
            "    {{\n      \"vm\": \"{backend}\",\n      \"virtual_ops\": {ops},\n      \"fused_wall_s\": {fused_wall:.6},\n      \"reference_wall_s\": {reference_wall:.6},\n      \"fused_ops_per_s\": {fused_tput:.0},\n      \"reference_ops_per_s\": {reference_tput:.0},\n      \"speedup\": {:.3}\n    }}",
            fused_tput / reference_tput
        ));
    }
    assert!(all_identical, "fused and reference measurements must match");

    let json = format!(
        "{{\n  \"bench\": \"vmexec\",\n  \"kernels\": {},\n  \"input_size\": \"S\",\n  \"vms\": [\n{}\n  ],\n  \"measurements_bit_identical\": true\n}}\n",
        grid.len(),
        rows.join(",\n")
    );
    let path = dir.join("BENCH_vmexec.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("[wrote {}]", path.display());
}
