//! `wb` — the repo's front door for static verification and fault
//! injection.
//!
//! ```text
//! wb analyze --all                 # full corpus sweep (verify.sh gate)
//! wb analyze --quick               # 3-kernel smoke subset
//! wb analyze --kernels gemm,AES    # named kernels only
//! wb analyze --all --out report.json
//! wb inject --all                  # every fault family (verify.sh gate)
//! wb inject --fault decode --quick # one family, reduced corpus
//! ```
//!
//! `analyze` runs the `wb-analysis` sweep — IR verification between
//! every pass at every opt level, Wasm type-checking of every emitted
//! module, the fusion cost-equivalence audit of both VMs, and the
//! corpus lints — and prints a one-line summary. Failures of the hard
//! checks (everything but lints) list their diagnostics and set a
//! non-zero exit status. `--out` additionally writes the
//! machine-readable JSON report.
//!
//! `inject` runs the fault-injection harness ([`wb_harness::inject`]):
//! decode corruption, fuel/memory/stack exhaustion and forced worker
//! panics, asserting every fault surfaces as a structured error with
//! zero uncaught panics.

use wb_analysis::{analyze, AnalysisConfig};
use wb_benchmarks::InputSize;
use wb_harness::Cli;

const USAGE: &str = "usage: wb analyze [--all|--quick] [--kernels a,b] [--sizes XS,M] [--no-fusion] [--out report.json]\n       wb inject [--all|--fault <name>] [--quick]";

fn inject_main(args: &[String]) {
    for flag in args.iter().filter_map(|a| a.strip_prefix("--")) {
        let name = flag.split_once('=').map_or(flag, |(k, _)| k);
        if !matches!(name, "all" | "fault" | "quick") {
            eprintln!("unknown flag '--{name}'\n{USAGE}");
            std::process::exit(2);
        }
    }
    let cli = Cli::from_args(args.iter().cloned());
    let quick = cli.has("quick");
    let reports = match cli.get("fault") {
        Some(name) => match wb_harness::inject::run_fault(name, quick) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown fault '{name}' (known: {})",
                    wb_harness::inject::ALL_FAULTS.join(", ")
                );
                std::process::exit(2);
            }
        },
        None => wb_harness::inject::run_all(quick),
    };
    let mut uncaught = 0usize;
    let mut unexpected = 0usize;
    println!("fault     probes  expected  unexpected  uncaught-panics");
    for r in &reports {
        println!(
            "{:<8}  {:>6}  {:>8}  {:>10}  {:>15}",
            r.fault, r.probes, r.expected, r.unexpected, r.uncaught_panics
        );
        for d in &r.diagnostics {
            eprintln!("  {}: {d}", r.fault);
        }
        uncaught += r.uncaught_panics;
        unexpected += r.unexpected;
    }
    println!("inject: {uncaught} uncaught panics, {unexpected} unexpected outcomes");
    if uncaught + unexpected > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {}
        Some("inject") => {
            inject_main(&args[1..]);
            return;
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    for flag in args[1..].iter().filter_map(|a| a.strip_prefix("--")) {
        let name = flag.split_once('=').map_or(flag, |(k, _)| k);
        if !matches!(
            name,
            "all" | "quick" | "kernels" | "sizes" | "no-fusion" | "out"
        ) {
            eprintln!("unknown flag '--{name}'\n{USAGE}");
            std::process::exit(2);
        }
    }
    let cli = Cli::from_args(args[1..].iter().cloned());

    let mut cfg = if cli.has("quick") {
        AnalysisConfig::quick()
    } else {
        AnalysisConfig::full()
    };
    if let Some(list) = cli.get("kernels") {
        cfg.kernels = list.split(',').map(str::to_string).collect();
    }
    if let Some(list) = cli.get("sizes") {
        cfg.sizes = list
            .split(',')
            .map(|s| match s {
                "XS" => InputSize::XS,
                "S" => InputSize::S,
                "M" => InputSize::M,
                "L" => InputSize::L,
                "XL" => InputSize::XL,
                other => {
                    eprintln!("unknown size '{other}' (use XS,S,M,L,XL)");
                    std::process::exit(2);
                }
            })
            .collect();
    }
    if cli.has("no-fusion") {
        cfg.fusion = false;
    }

    let t0 = std::time::Instant::now();
    let report = analyze(&cfg);
    let elapsed = t0.elapsed();

    println!(
        "analyze: {} ({:.2}s)",
        report.summary(),
        elapsed.as_secs_f64()
    );
    for lint in &report.lints {
        println!(
            "  lint [{}] {} ({}, {}): {}",
            lint.finding.lint, lint.kernel, lint.size, lint.finding.func, lint.finding.message
        );
    }
    for failure in report.failures() {
        println!(
            "  FAIL {} {} [{}]: {}",
            failure.kernel,
            failure.level,
            failure.subject,
            failure.error.as_deref().unwrap_or("?")
        );
    }

    if let Some(path) = cli.get("out") {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("[wrote {path}]");
    }

    if !report.ok() {
        std::process::exit(1);
    }
}
