//! Table 2: geometric means of compiler-optimization results — execution
//! time, code size and memory of JS, Wasm and x86 at `-O1`/`-Ofast`/`-Oz`
//! relative to `-O2`.

use wb_benchmarks::InputSize;
use wb_core::report::{ratio, Table};
use wb_core::stats::geomean;
use wb_harness::{Cli, GridEngine, Run};
use wb_minic::OptLevel;

struct LevelData {
    js_time: Vec<f64>,
    js_size: Vec<f64>,
    js_mem: Vec<f64>,
    wasm_time: Vec<f64>,
    wasm_size: Vec<f64>,
    wasm_mem: Vec<f64>,
    x86_time: Vec<f64>,
    x86_size: Vec<f64>,
}

fn main() {
    let cli = Cli::from_env();
    let engine = GridEngine::from_cli(&cli);
    let levels = [OptLevel::O1, OptLevel::O2, OptLevel::Ofast, OptLevel::Oz];

    let per_bench = engine.map(cli.benchmarks(), |b| {
        levels
            .iter()
            .map(|&level| {
                let mut run = Run::new(b.clone(), InputSize::M);
                run.level = level;
                let w = engine.wasm(&run);
                let j = engine.js(&run);
                let n = engine.native(&run);
                (
                    j.time.0,
                    j.code_size as f64,
                    j.memory_bytes as f64,
                    w.time.0,
                    w.code_size as f64,
                    w.memory_bytes as f64,
                    n.time.0,
                    n.code_size as f64,
                )
            })
            .collect::<Vec<_>>()
    });

    // Collect per-level columns.
    let mut data: Vec<LevelData> = (0..4)
        .map(|_| LevelData {
            js_time: vec![],
            js_size: vec![],
            js_mem: vec![],
            wasm_time: vec![],
            wasm_size: vec![],
            wasm_mem: vec![],
            x86_time: vec![],
            x86_size: vec![],
        })
        .collect();
    for bench in &per_bench {
        for (i, row) in bench.iter().enumerate() {
            data[i].js_time.push(row.0);
            data[i].js_size.push(row.1);
            data[i].js_mem.push(row.2);
            data[i].wasm_time.push(row.3);
            data[i].wasm_size.push(row.4);
            data[i].wasm_mem.push(row.5);
            data[i].x86_time.push(row.6);
            data[i].x86_size.push(row.7);
        }
    }

    // Geomean of per-benchmark ratios level/O2 (O2 is index 1).
    let gm_ratio = |get: fn(&LevelData) -> &Vec<f64>, level: usize| -> f64 {
        let base = get(&data[1]);
        let vals: Vec<f64> = get(&data[level])
            .iter()
            .zip(base.iter())
            .map(|(v, b)| v / b)
            .collect();
        geomean(&vals).expect("positive ratios")
    };

    let mut t = Table::new(
        "Table 2: geometric means of compiler optimization results (vs -O2)",
        &["Metric", "Targets", "JS", "WASM", "x86"],
    );
    let metric_rows: [(&str, usize); 3] = [("O1/O2", 0), ("Ofast/O2", 2), ("Oz/O2", 3)];
    for (label, idx) in metric_rows {
        t.row(vec![
            "Exec. Time".into(),
            label.into(),
            ratio(gm_ratio(|d| &d.js_time, idx)),
            ratio(gm_ratio(|d| &d.wasm_time, idx)),
            ratio(gm_ratio(|d| &d.x86_time, idx)),
        ]);
    }
    for (label, idx) in metric_rows {
        t.row(vec![
            "Code Size".into(),
            label.into(),
            ratio(gm_ratio(|d| &d.js_size, idx)),
            ratio(gm_ratio(|d| &d.wasm_size, idx)),
            ratio(gm_ratio(|d| &d.x86_size, idx)),
        ]);
    }
    for (label, idx) in metric_rows {
        t.row(vec![
            "Memory".into(),
            label.into(),
            ratio(gm_ratio(|d| &d.js_mem, idx)),
            ratio(gm_ratio(|d| &d.wasm_mem, idx)),
            "-".into(),
        ]);
    }
    cli.emit("table2", &t);
    engine.finish_with(&cli, "table2");
}
