//! Fault-injection harness (`wb inject`): drive every deliberate fault
//! the deterministic trap/limit layer can produce and verify that each
//! one surfaces as a *structured, caught* error — never an uncaught
//! panic, never a wedged worker pool.
//!
//! Five fault families:
//!
//! | fault    | what is injected                                   | expected surface |
//! |----------|----------------------------------------------------|------------------|
//! | `decode` | seeded random corruption of a real Wasm binary     | `Err(DecodeError)` or valid re-decode |
//! | `fuel`   | tiny fuel budget on all three backends             | `TrapKind::FuelExhausted` |
//! | `memory` | tiny memory ceiling on all three backends          | `TrapKind::MemoryLimit` |
//! | `stack`  | tiny call-depth limit on a recursive program       | `TrapKind::StackOverflow` |
//! | `panic`  | forced worker panics inside the grid's thread pool | per-cell `Err`, pool drains fully |
//!
//! Every probe runs under `catch_unwind`; a panic that escapes the
//! library under test is counted as **uncaught** and fails the harness.
//! `scripts/verify.sh` runs `wb inject --all` and requires zero.

use crate::{panic_message, parallel_map_catch, GridEngine, Run};
use std::panic::AssertUnwindSafe;
use wb_benchmarks::InputSize;
use wb_core::{
    try_run_compiled_js_with, try_run_native_with, try_run_wasm_with, JsSpec, Measurement,
    RunFailure, TrapKind, WasmSpec,
};
use wb_env::ResourceLimits;
use wb_minic::{Compiler, OptLevel};

/// Outcome of one fault family.
#[derive(Debug, Clone)]
pub struct InjectReport {
    /// Fault family name.
    pub fault: &'static str,
    /// Probes executed.
    pub probes: usize,
    /// Probes that produced the expected structured error.
    pub expected: usize,
    /// Probes whose error had the wrong [`TrapKind`] (or that
    /// unexpectedly succeeded).
    pub unexpected: usize,
    /// Panics that escaped the library under test.
    pub uncaught_panics: usize,
    /// Diagnostics for everything that went wrong.
    pub diagnostics: Vec<String>,
}

impl InjectReport {
    fn new(fault: &'static str) -> Self {
        InjectReport {
            fault,
            probes: 0,
            expected: 0,
            unexpected: 0,
            uncaught_panics: 0,
            diagnostics: Vec::new(),
        }
    }

    /// Did every probe in this family behave?
    pub fn ok(&self) -> bool {
        self.unexpected == 0 && self.uncaught_panics == 0
    }
}

/// The fault families `--all` runs, in order.
pub const ALL_FAULTS: &[&str] = &["decode", "fuel", "memory", "stack", "panic"];

/// Run one fault family by name. Unknown names return `None`.
pub fn run_fault(name: &str, quick: bool) -> Option<InjectReport> {
    match name {
        "decode" => Some(decode_corruption(quick)),
        "fuel" => Some(fuel_exhaustion()),
        "memory" => Some(memory_exhaustion()),
        "stack" => Some(stack_exhaustion()),
        "panic" => Some(forced_panics()),
        _ => None,
    }
}

/// Run every fault family.
pub fn run_all(quick: bool) -> Vec<InjectReport> {
    ALL_FAULTS
        .iter()
        .map(|f| run_fault(f, quick).expect("known fault"))
        .collect()
}

/// A run probe: execute `f` under `catch_unwind` and classify the
/// outcome against the expected [`TrapKind`].
fn probe(
    report: &mut InjectReport,
    label: &str,
    expect: TrapKind,
    f: impl FnOnce() -> Result<Measurement, RunFailure>,
) {
    report.probes += 1;
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(_)) => {
            report.unexpected += 1;
            report
                .diagnostics
                .push(format!("{label}: expected {expect}, but the run succeeded"));
        }
        Ok(Err(fail)) => {
            if fail.error.kind() == expect {
                report.expected += 1;
            } else {
                report.unexpected += 1;
                report.diagnostics.push(format!(
                    "{label}: expected {expect}, got {} ({})",
                    fail.error.kind(),
                    fail.error
                ));
            }
        }
        Err(payload) => {
            report.uncaught_panics += 1;
            report.diagnostics.push(format!(
                "{label}: UNCAUGHT PANIC: {}",
                panic_message(payload)
            ));
        }
    }
}

/// Deterministic 64-bit LCG (same constants as MMIX) — the seeded
/// corruption source. No OS randomness: every `wb inject` run mutates
/// the same bytes.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// Fault family `decode`: compile a real kernel, then feed seeded
/// corruptions of its binary (byte flips, truncations, length-field
/// splices) to the decoder. The decoder must return `Err` or a valid
/// module — never panic.
fn decode_corruption(quick: bool) -> InjectReport {
    let mut report = InjectReport::new("decode");
    let bytes = match Compiler::cheerp()
        .define("N", 24)
        .compile_wasm(GRID_SRC)
        .map(|out| wb_wasm::encode_module(&out.module))
    {
        Ok(b) => b,
        Err(e) => {
            report.probes = 1;
            report.unexpected = 1;
            report.diagnostics.push(format!("seed compile failed: {e}"));
            return report;
        }
    };
    let rounds = if quick { 500 } else { 5_000 };
    let mut rng = Lcg(0x77_61_73_6d); // "wasm"
    for i in 0..rounds {
        let mut mutated = bytes.clone();
        match rng.next() % 3 {
            0 => {
                // Flip one byte anywhere (headers, LEB128 counts, opcodes).
                let pos = (rng.next() as usize) % mutated.len();
                mutated[pos] ^= (rng.next() % 255 + 1) as u8;
            }
            1 => {
                // Truncate mid-stream.
                let len = (rng.next() as usize) % mutated.len();
                mutated.truncate(len);
            }
            _ => {
                // Splice a run of bytes with raw noise (corrupts section
                // payloads and vector counts wholesale).
                let start = (rng.next() as usize) % mutated.len();
                let len = ((rng.next() as usize) % 16).min(mutated.len() - start);
                for b in &mut mutated[start..start + len] {
                    *b = rng.next() as u8;
                }
            }
        }
        report.probes += 1;
        match std::panic::catch_unwind(AssertUnwindSafe(|| wb_wasm::decode_module(&mutated))) {
            Ok(_) => report.expected += 1, // Err(DecodeError) and survivable Ok both fine
            Err(payload) => {
                report.uncaught_panics += 1;
                if report.diagnostics.len() < 10 {
                    report.diagnostics.push(format!(
                        "decode #{i}: UNCAUGHT PANIC: {}",
                        panic_message(payload)
                    ));
                }
            }
        }
    }
    report
}

/// A small dense kernel: enough work that a tiny fuel budget trips
/// mid-run on every backend, and a static footprint (8·N²+8·N bytes)
/// that a tiny memory ceiling rejects.
const GRID_SRC: &str = "double A[N][N]; double v[N];\n\
    void bench_main() {\n\
      for (int t = 0; t < 50; t++)\n\
        for (int i = 0; i < N; i++)\n\
          for (int j = 0; j < N; j++)\n\
            A[i][j] = A[i][j] + (double)(i + j + t) / N;\n\
      double s = 0.0;\n\
      for (int i = 0; i < N; i++) s += A[i][i];\n\
      print_double(s);\n\
    }";

/// A recursive program for the call-depth probes. `DEPTH` is a define so
/// the recursion comfortably exceeds the injected limit while staying
/// far below the host's real stack.
const RECURSE_SRC: &str = "int rec(int n) {\n\
      if (n <= 0) return 0;\n\
      return rec(n - 1) + 1;\n\
    }\n\
    void bench_main() { print_int(rec(DEPTH)); }";

fn wasm_spec<'a>(
    source: &'a str,
    defines: &[(&str, &str)],
    limits: ResourceLimits,
) -> WasmSpec<'a> {
    let mut spec = WasmSpec::new(source);
    spec.defines = defines
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    spec.limits = limits;
    spec
}

fn js_spec<'a>(source: &'a str, defines: &[(&str, &str)], limits: ResourceLimits) -> JsSpec<'a> {
    let mut spec = JsSpec::new(source);
    spec.defines = defines
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    spec.limits = limits;
    spec
}

fn string_defines(defines: &[(&str, &str)]) -> Vec<(String, String)> {
    defines
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Fault family `fuel`: a 1000-step budget on a kernel that needs far
/// more. All three backends must stop with `FuelExhausted`, not spin.
fn fuel_exhaustion() -> InjectReport {
    let mut report = InjectReport::new("fuel");
    let limits = ResourceLimits::default().with_fuel(1_000);
    let defines = [("N", "32")];
    probe(&mut report, "fuel/wasm", TrapKind::FuelExhausted, || {
        try_run_wasm_with(&wasm_spec(GRID_SRC, &defines, limits), None)
    });
    probe(&mut report, "fuel/js", TrapKind::FuelExhausted, || {
        try_run_compiled_js_with(&js_spec(GRID_SRC, &defines, limits), None)
    });
    probe(&mut report, "fuel/native", TrapKind::FuelExhausted, || {
        try_run_native_with(
            GRID_SRC,
            &string_defines(&defines),
            OptLevel::O2,
            "bench_main",
            limits,
            None,
        )
    });
    report
}

/// Fault family `memory`: a 4 KiB ceiling against a ~66 KiB footprint.
/// Wasm rejects at instantiation/grow, JS at the GC safe point, native
/// against its static data segment — same `MemoryLimit` kind everywhere.
fn memory_exhaustion() -> InjectReport {
    let mut report = InjectReport::new("memory");
    let limits = ResourceLimits::default().with_max_memory_bytes(4 * 1024);
    let defines = [("N", "90")]; // 8·90² ≈ 63 KiB of arrays
    probe(&mut report, "memory/wasm", TrapKind::MemoryLimit, || {
        try_run_wasm_with(&wasm_spec(GRID_SRC, &defines, limits), None)
    });
    probe(&mut report, "memory/js", TrapKind::MemoryLimit, || {
        try_run_compiled_js_with(&js_spec(GRID_SRC, &defines, limits), None)
    });
    probe(&mut report, "memory/native", TrapKind::MemoryLimit, || {
        try_run_native_with(
            GRID_SRC,
            &string_defines(&defines),
            OptLevel::O2,
            "bench_main",
            limits,
            None,
        )
    });
    report
}

/// Fault family `stack`: recursion to depth 5000 under a 64-frame
/// limit. The limit is checked per guest frame on every backend.
fn stack_exhaustion() -> InjectReport {
    let mut report = InjectReport::new("stack");
    let limits = ResourceLimits::default().with_max_call_depth(64);
    let defines = [("DEPTH", "5000")];
    probe(&mut report, "stack/wasm", TrapKind::StackOverflow, || {
        try_run_wasm_with(&wasm_spec(RECURSE_SRC, &defines, limits), None)
    });
    probe(&mut report, "stack/js", TrapKind::StackOverflow, || {
        try_run_compiled_js_with(&js_spec(RECURSE_SRC, &defines, limits), None)
    });
    probe(&mut report, "stack/native", TrapKind::StackOverflow, || {
        try_run_native_with(
            RECURSE_SRC,
            &string_defines(&defines),
            OptLevel::O2,
            "bench_main",
            limits,
            None,
        )
    });
    report
}

/// Fault family `panic`: panics forced inside grid worker cells. The
/// pool must drain every item (no FIFO wedging), surface each panic as
/// that cell's `Err`, and the grid engine must quarantine a failing
/// cell while healthy cells still produce measurements.
fn forced_panics() -> InjectReport {
    let mut report = InjectReport::new("panic");
    // The injected panics are all caught, but the default hook would
    // still spray backtraces on stderr; silence it for this family.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // 1. Raw pool isolation: 16 cells, every third one panics.
    report.probes += 1;
    let results = parallel_map_catch((0..16).collect::<Vec<u32>>(), Some(4), |i| {
        if i % 3 == 0 {
            panic!("injected panic in cell {i}");
        }
        i * 2
    });
    let oks = results.iter().filter(|r| r.is_ok()).count();
    let errs = results.iter().filter(|r| r.is_err()).count();
    if results.len() == 16 && errs == 6 && oks == 10 {
        report.expected += 1;
    } else {
        report.unexpected += 1;
        report.diagnostics.push(format!(
            "pool isolation: got {} results, {oks} ok, {errs} err (want 16/10/6)",
            results.len()
        ));
    }

    // 2. Engine-level degradation: one poisoned cell (fuel-starved) in a
    // healthy grid under keep-going. The healthy cells must measure, the
    // poisoned one must land on the quarantine list.
    report.probes += 1;
    let engine = GridEngine::with_settings(None, Some(2)).with_keep_going();
    let bench = wb_benchmarks::find("trisolv").expect("trisolv in corpus");
    let mut cells: Vec<Run> = (0..3)
        .map(|_| Run::new(bench.clone(), InputSize::XS))
        .collect();
    cells[1].limits = ResourceLimits::default().with_fuel(10);
    let measurements = engine.map(cells, |c| engine.wasm(&c));
    let quarantined_kinds: Vec<TrapKind> = engine.failures().iter().map(|f| f.kind).collect();
    if measurements.len() == 3 && quarantined_kinds == [TrapKind::FuelExhausted] {
        report.expected += 1;
    } else {
        report.unexpected += 1;
        report.diagnostics.push(format!(
            "engine degradation: {} measurements, quarantine {quarantined_kinds:?} \
             (want 3 and [fuel-exhausted])",
            measurements.len()
        ));
    }
    std::panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fault_families_pass_quick() {
        for r in run_all(true) {
            assert!(
                r.ok(),
                "fault family '{}' failed: {:?}",
                r.fault,
                r.diagnostics
            );
            assert!(r.probes > 0);
        }
    }

    #[test]
    fn unknown_fault_is_rejected() {
        assert!(run_fault("no-such-fault", true).is_none());
    }
}
