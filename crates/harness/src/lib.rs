//! # wb-harness — experiment binaries
//!
//! One binary per paper artifact. Each prints the paper's rows as an
//! aligned text table and writes a CSV under `results/`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig5` | Fig 5 — Wasm/JS time & code size across `-O` levels |
//! | `fig6` | Fig 6 — x86 control across `-O` levels |
//! | `table2` | Table 2 — geomean opt-level ratios (JS/Wasm/x86) |
//! | `compilers` | §4.2.2 — Cheerp vs Emscripten |
//! | `fig9` | Fig 9 + Tables 3–6 — input-size sweep (per browser) |
//! | `fig10` | Fig 10 — JIT on/off speedups |
//! | `table7` | Table 7 — Wasm tier policies on Chrome & Firefox |
//! | `fig11` | Fig 11 — five-number summaries of opt-level ratios |
//! | `fig12_13` | Figs 12/13 + Table 8 — six environments |
//! | `ctxswitch` | §4.5 — JS↔Wasm context-switch microbenchmark |
//! | `table9` | Table 9 — manual JS vs Cheerp JS vs Wasm |
//! | `table10` | Table 10 — Long.js / Hyphenopoly / FFmpeg |
//! | `table12` | Table 12 — Long.js arithmetic operation counts |
//!
//! Shared flags: `--filter <substr>` restricts benchmarks, `--out <dir>`
//! changes the CSV directory, `--quick` runs a reduced grid, `--jobs N`
//! bounds the worker pool (default: `available_parallelism`),
//! `--no-cache` disables the shared artifact cache, `--stats` prints its
//! hit/miss summary and `--reference-exec` runs both VMs on their plain
//! per-op interpreters instead of the fused micro-op engines (the
//! measured numbers are bit-identical either way — this flag exists to
//! prove exactly that). All binaries execute
//! their grid through one [`GridEngine`], which compiles each distinct
//! `(source, defines, level, toolchain, heap)` configuration exactly
//! once per process — measured virtual numbers are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::Mutex;
use wb_benchmarks::{Benchmark, InputSize};
use wb_core::report::Table;
use wb_core::{
    try_run_compiled_js_with, try_run_native_with, try_run_wasm_with, ArtifactCache, JsSpec,
    Measurement, RunError, RunFailure, TrapKind, WasmSpec,
};
use wb_env::{Environment, JitMode, Nanos, ResourceLimits, TierPolicy, Toolchain, VirtualClock};
use wb_minic::OptLevel;

/// Best-effort text of a caught panic payload (`&str` or `String`
/// payloads cover everything `panic!` produces in this workspace).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwrap a run result or exit with the one-line diagnostic every
/// harness binary promises on failure: `error: <label> [<kind>]: <msg>`.
pub fn run_or_exit<T>(label: &str, result: Result<T, RunError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {label} [{}]: {e}", e.kind());
        std::process::exit(1);
    })
}

/// Minimal CLI flags: `--key value` / `--key=value` / bare `--flag`.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    flags: HashMap<String, String>,
}

impl Cli {
    /// Parse from `std::env::args`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable core of [`Cli::from_env`]).
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = HashMap::new();
        let mut args = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = args.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if args.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = args.next().expect("peeked");
                    flags.insert(stripped.to_string(), v);
                } else {
                    flags.insert(stripped.to_string(), "true".to_string());
                }
            }
        }
        Cli { flags }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Boolean flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Benchmarks after `--filter`. Under `--quick` (and no filter) the
    /// suite is subsampled to every fourth benchmark for a fast smoke
    /// grid that still spans both PolyBench and CHStone.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = wb_benchmarks::all_benchmarks();
        match self.get("filter") {
            Some(f) => all
                .into_iter()
                .filter(|b| b.name.to_lowercase().contains(&f.to_lowercase()))
                .collect(),
            None if self.has("quick") => all.into_iter().step_by(4).collect(),
            None => all,
        }
    }

    /// Worker-thread bound from `--jobs N`. `None` means "use
    /// [`std::thread::available_parallelism`]" (resolved at pool build).
    pub fn jobs(&self) -> Option<usize> {
        self.get("jobs")
            .map(|v| v.parse().expect("--jobs expects a positive integer"))
            .filter(|&n| n > 0)
    }

    /// Whether `--reference-exec` asks for the plain per-op interpreters
    /// (fused micro-op engines disabled in both VMs).
    pub fn reference_exec(&self) -> bool {
        self.has("reference-exec")
    }

    /// Whether `--keep-going` asks the grid to degrade gracefully: a
    /// failed cell is recorded (and annotated in the partial-results
    /// CSV) instead of aborting the whole binary.
    pub fn keep_going(&self) -> bool {
        self.has("keep-going")
    }

    /// Bounded retry count from `--retries N` (default 1). Only panics
    /// are retried — deterministic traps fail identically every time.
    pub fn retries(&self) -> u32 {
        self.get("retries")
            .map(|v| v.parse().expect("--retries expects a non-negative integer"))
            .unwrap_or(1)
    }

    /// Input sizes: all five, or `XS,M,XL` under `--quick`.
    pub fn sizes(&self) -> Vec<InputSize> {
        if self.has("quick") {
            vec![InputSize::XS, InputSize::M, InputSize::XL]
        } else {
            InputSize::ALL.to_vec()
        }
    }

    /// Browser selector for fig9 (`--browser firefox`).
    pub fn environment(&self) -> Environment {
        match self.get("browser").map(|b| b.to_lowercase()) {
            Some(b) if b.starts_with("fire") => {
                Environment::new(wb_env::Browser::Firefox, wb_env::Platform::Desktop)
            }
            Some(b) if b.starts_with("edge") => {
                Environment::new(wb_env::Browser::Edge, wb_env::Platform::Desktop)
            }
            _ => Environment::desktop_chrome(),
        }
    }

    /// CSV output directory (`results/` by default), created on demand.
    pub fn out_dir(&self) -> PathBuf {
        let dir = PathBuf::from(self.get("out").unwrap_or("results"));
        std::fs::create_dir_all(&dir).expect("create results dir");
        dir
    }

    /// Write a table's CSV next to printing it.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.out_dir().join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("[wrote {}]", path.display());
    }
}

/// Run a closure per item on a scoped thread pool, preserving order.
/// The VMs are single-threaded; each worker builds its own.
///
/// Ordering guarantee: workers claim items strictly front-to-back
/// (FIFO), and the result vector is returned in input order regardless
/// of which worker finished when.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_jobs(items, None, f)
}

/// [`parallel_map`] with an explicit worker bound (`--jobs N`). Workers
/// drain the queue front-to-first (FIFO), so cells are claimed in grid
/// order — the first wave of workers hits each distinct compile key
/// early, which maximizes artifact-cache sharing for everyone behind it.
///
/// A panicking cell does **not** wedge the pool: every other item still
/// runs to completion, and only then is the first panic re-raised on the
/// caller's thread (with the original message). Callers that want
/// panics as per-cell values use [`parallel_map_catch`].
pub fn parallel_map_jobs<T, R, F>(items: Vec<T>, jobs: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let results = parallel_map_catch(items, jobs, f);
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|msg| panic!("grid cell {i} panicked: {msg}")))
        .collect()
}

/// [`parallel_map_jobs`], but a panicking cell yields `Err(message)`
/// instead of killing its worker thread: the pool keeps draining the
/// queue and every input produces an output. This is the isolation
/// boundary the grid engine's graceful-degradation mode is built on.
pub fn parallel_map_catch<T, R, F>(
    items: Vec<T>,
    jobs: Option<usize>,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n_threads = jobs.unwrap_or(cores).max(1).min(items.len().max(1));
    let items: VecDeque<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(items);
    let results = std::sync::Mutex::new(Vec::<(usize, Result<R, String>)>::new());
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                // Recover from a queue lock poisoned by a panic that
                // escaped `catch_unwind` (e.g. a panic while unwinding):
                // the remaining items must still drain.
                let item = queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .pop_front();
                match item {
                    Some((i, t)) => {
                        let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(t)))
                            .map_err(panic_message);
                        results
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// The shared execution engine behind every experiment binary: one
/// process-wide artifact cache (so identical compiles across grid cells
/// and across worker threads happen once), a `--jobs` bound for the
/// thread pool, and a `--stats` summary.
///
/// Flags: `--no-cache` disables artifact sharing (each cell compiles
/// from scratch — the measured virtual numbers are bit-identical either
/// way), `--jobs N` caps worker threads, `--stats` prints cache
/// hit/miss/bytes-saved counters to stderr at the end.
pub struct GridEngine {
    cache: Option<&'static ArtifactCache>,
    jobs: Option<usize>,
    stats: bool,
    reference_exec: bool,
    keep_going: bool,
    retries: u32,
    failures: Mutex<Vec<CellFailure>>,
    quarantine: Mutex<HashSet<String>>,
}

/// One failed grid cell, as recorded on the engine's quarantine list and
/// written to the `<name>_failures.csv` partial-results annex.
#[derive(Debug)]
pub struct CellFailure {
    /// `benchmark/size/level/backend` label of the cell.
    pub cell: String,
    /// Backend-independent fault class.
    pub kind: TrapKind,
    /// Human-readable error text.
    pub message: String,
    /// Virtual time accumulated before the fault, when the VM got far
    /// enough to have any.
    pub partial_time: Option<Nanos>,
    /// How many attempts were made (1 + retries actually used).
    pub attempts: u32,
}

/// Deterministic backoff before retry `attempt` (1-based): a fixed
/// exponential schedule, a pure function of the attempt number — no
/// jitter, so two runs of the same failing grid retry on the same
/// schedule. Wall-clock sleeps never touch virtual measurements.
fn backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(10u64 << (attempt - 1).min(6))
}

impl GridEngine {
    /// Build from CLI flags.
    pub fn from_cli(cli: &Cli) -> Self {
        GridEngine {
            cache: if cli.has("no-cache") {
                None
            } else {
                Some(ArtifactCache::global())
            },
            jobs: cli.jobs(),
            stats: cli.has("stats"),
            reference_exec: cli.reference_exec(),
            keep_going: cli.keep_going(),
            retries: cli.retries(),
            failures: Mutex::new(Vec::new()),
            quarantine: Mutex::new(HashSet::new()),
        }
    }

    /// An engine with explicit settings (testable core of
    /// [`GridEngine::from_cli`]).
    pub fn with_settings(cache: Option<&'static ArtifactCache>, jobs: Option<usize>) -> Self {
        GridEngine {
            cache,
            jobs,
            stats: false,
            reference_exec: false,
            keep_going: false,
            retries: 1,
            failures: Mutex::new(Vec::new()),
            quarantine: Mutex::new(HashSet::new()),
        }
    }

    /// [`GridEngine::with_settings`] on the plain per-op interpreters
    /// (`--reference-exec`).
    pub fn with_reference_exec(mut self) -> Self {
        self.reference_exec = true;
        self
    }

    /// [`GridEngine::with_settings`] in graceful-degradation mode
    /// (`--keep-going`): failed cells are quarantined instead of
    /// aborting the binary.
    pub fn with_keep_going(mut self) -> Self {
        self.keep_going = true;
        self
    }

    /// Map the grid over the worker pool (order-preserving, FIFO,
    /// bounded by `--jobs`).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_map_jobs(items, self.jobs, f)
    }

    /// Execute a cell's Wasm build through the shared cache. Strict by
    /// default (one-line diagnostic on stderr, exit 1); under
    /// `--keep-going` a failed cell yields its partial measurement (or a
    /// zeroed one) and lands on the quarantine list.
    pub fn wasm(&self, run: &Run) -> Measurement {
        self.degrade(run, "wasm", self.try_wasm(run))
    }

    /// Execute a cell's compiled-JS build through the shared cache
    /// (strict / keep-going semantics as [`GridEngine::wasm`]).
    pub fn js(&self, run: &Run) -> Measurement {
        self.degrade(run, "js", self.try_js(run))
    }

    /// Execute a cell's native control build through the shared cache
    /// (strict / keep-going semantics as [`GridEngine::wasm`]).
    pub fn native(&self, run: &Run) -> Measurement {
        self.degrade(run, "native", self.try_native(run))
    }

    /// Fallible Wasm cell: panics are caught at the cell boundary, only
    /// panics are retried (deterministic traps fail identically), and a
    /// cell that exhausts its attempts is quarantined.
    pub fn try_wasm(&self, run: &Run) -> Result<Measurement, RunFailure> {
        let cell = self.configured(run);
        self.attempt(&run.label("wasm"), || cell.try_wasm_with(self.cache))
    }

    /// Fallible compiled-JS cell (semantics as [`GridEngine::try_wasm`]).
    pub fn try_js(&self, run: &Run) -> Result<Measurement, RunFailure> {
        let cell = self.configured(run);
        self.attempt(&run.label("js"), || cell.try_js_with(self.cache))
    }

    /// Fallible native cell (semantics as [`GridEngine::try_wasm`]).
    pub fn try_native(&self, run: &Run) -> Result<Measurement, RunFailure> {
        self.attempt(&run.label("native"), || run.try_native_with(self.cache))
    }

    /// A cell with the engine-wide `--reference-exec` choice applied.
    fn configured(&self, run: &Run) -> Run {
        let mut run = run.clone();
        run.reference_exec |= self.reference_exec;
        run
    }

    /// Per-cell isolation + bounded retry. Each attempt runs under
    /// `catch_unwind`, so a panicking cell becomes [`RunError::Panic`]
    /// instead of tearing down the worker. Panics get up to `--retries`
    /// re-attempts on the deterministic [`backoff`] schedule;
    /// deterministic faults (traps, limits, compile errors) fail
    /// identically every time, so they don't.
    fn attempt(
        &self,
        label: &str,
        f: impl Fn() -> Result<Measurement, RunFailure>,
    ) -> Result<Measurement, RunFailure> {
        let mut attempts = 0u32;
        let failure = loop {
            attempts += 1;
            let outcome = match std::panic::catch_unwind(AssertUnwindSafe(&f)) {
                Ok(r) => r,
                Err(payload) => Err(RunFailure {
                    error: RunError::Panic(panic_message(payload)),
                    partial: None,
                }),
            };
            match outcome {
                Ok(m) => return Ok(m),
                Err(fail) => {
                    let retryable = matches!(fail.error, RunError::Panic(_));
                    if retryable && attempts <= self.retries {
                        std::thread::sleep(backoff(attempts));
                        continue;
                    }
                    break fail;
                }
            }
        };
        self.record_failure(label, &failure, attempts);
        Err(failure)
    }

    /// Put a spent cell on the quarantine list (deduplicated by label).
    fn record_failure(&self, label: &str, failure: &RunFailure, attempts: u32) {
        let mut quarantine = self
            .quarantine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if !quarantine.insert(label.to_string()) {
            return; // already quarantined; don't double-report
        }
        drop(quarantine);
        self.failures
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(CellFailure {
                cell: label.to_string(),
                kind: failure.error.kind(),
                message: failure.error.to_string(),
                partial_time: failure.partial.as_ref().map(|m| m.time),
                attempts,
            });
    }

    /// Strict-vs-keep-going policy for the infallible cell methods.
    fn degrade(
        &self,
        run: &Run,
        backend: &'static str,
        outcome: Result<Measurement, RunFailure>,
    ) -> Measurement {
        match outcome {
            Ok(m) => m,
            Err(fail) if self.keep_going => {
                fail.partial.map(|m| *m).unwrap_or_else(zero_measurement)
            }
            Err(fail) => {
                eprintln!(
                    "error: {} [{}]: {}",
                    run.label(backend),
                    fail.error.kind(),
                    fail.error
                );
                std::process::exit(1);
            }
        }
    }

    /// The quarantine list: every cell that exhausted its attempts.
    pub fn failures(&self) -> std::sync::MutexGuard<'_, Vec<CellFailure>> {
        self.failures
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Number of quarantined cells.
    pub fn failure_count(&self) -> usize {
        self.failures().len()
    }

    /// Write the partial-results annex `<name>_failures.csv` (one row
    /// per quarantined cell) when any cell failed, and print the
    /// quarantine summary. No file is written on a clean grid, so
    /// default runs produce byte-identical `results/` trees.
    pub fn emit_failures(&self, cli: &Cli, name: &str) {
        let failures = self.failures();
        if failures.is_empty() {
            return;
        }
        let mut table = Table::new(
            &format!("{name}: quarantined cells (partial results)"),
            &["cell", "kind", "attempts", "partial virtual ns", "error"],
        );
        for f in failures.iter() {
            table.row(vec![
                f.cell.clone(),
                f.kind.to_string(),
                f.attempts.to_string(),
                f.partial_time
                    .map(|t| format!("{}", t.0))
                    .unwrap_or_else(|| "-".to_string()),
                f.message.clone(),
            ]);
        }
        let path = cli.out_dir().join(format!("{name}_failures.csv"));
        std::fs::write(&path, table.to_csv()).expect("write failures csv");
        eprintln!(
            "[quarantine] {} cell(s) failed; annotated in {}",
            failures.len(),
            path.display()
        );
    }

    /// Print the `--stats` / quarantine summary and, under
    /// `--keep-going`, write the failure annex. Call once, after the
    /// grid. Exits nonzero when cells were quarantined, so a degraded
    /// grid is still visible to scripts.
    pub fn finish_with(&self, cli: &Cli, name: &str) {
        self.emit_failures(cli, name);
        self.finish();
        if self.failure_count() > 0 {
            std::process::exit(2);
        }
    }

    /// Print the `--stats` summary (call once, after the grid).
    pub fn finish(&self) {
        for f in self.failures().iter() {
            eprintln!(
                "[quarantine] {} [{}] after {} attempt(s): {}",
                f.cell, f.kind, f.attempts, f.message
            );
        }
        if !self.stats {
            return;
        }
        match self.cache {
            Some(cache) => {
                let s = cache.stats();
                eprintln!(
                    "[cache] {} hits / {} misses ({:.1}% hit rate), {} artifact bytes not re-built",
                    s.hits,
                    s.misses,
                    100.0 * s.hit_rate(),
                    s.bytes_saved
                );
            }
            None => eprintln!("[cache] disabled (--no-cache)"),
        }
    }
}

/// The sentinel a quarantined cell contributes under `--keep-going`
/// when it faulted before producing any measurement state.
fn zero_measurement() -> Measurement {
    Measurement {
        time: Nanos::ZERO,
        clock: VirtualClock::new(),
        memory_bytes: 0,
        code_size: 0,
        counts: wb_env::OpCounts::new(),
        arith: wb_env::ArithCounts::default(),
        output: Vec::new(),
        context_switches: 0,
    }
}

/// One benchmark run request (a grid cell).
#[derive(Debug, Clone)]
pub struct Run {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Dataset size.
    pub size: InputSize,
    /// Optimization level.
    pub level: OptLevel,
    /// Toolchain.
    pub toolchain: Toolchain,
    /// Environment.
    pub env: Environment,
    /// Wasm tier policy.
    pub tier_policy: TierPolicy,
    /// JS JIT mode.
    pub jit: JitMode,
    /// Use the plain per-op interpreters instead of the fused engines.
    pub reference_exec: bool,
    /// Resource ceilings (fuel, memory, call depth). Default-unlimited,
    /// so study grids are bit-identical to the pre-limit engine; the
    /// fault-injection harness tightens them per cell.
    pub limits: ResourceLimits,
}

impl Run {
    /// Default configuration of a benchmark at a size (the study
    /// baseline: Cheerp `-O2`, desktop Chrome, default tiers).
    pub fn new(benchmark: Benchmark, size: InputSize) -> Self {
        Run {
            benchmark,
            size,
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            tier_policy: TierPolicy::Default,
            jit: JitMode::Enabled,
            reference_exec: false,
            limits: ResourceLimits::default(),
        }
    }

    /// `benchmark/size/level/backend` label, used on quarantine lists
    /// and failure CSVs.
    pub fn label(&self, backend: &str) -> String {
        format!(
            "{}/{:?}/{}/{backend}",
            self.benchmark.name,
            self.size,
            self.level.name()
        )
    }

    /// Execute the Wasm build.
    pub fn wasm(&self) -> Measurement {
        self.wasm_with(None)
    }

    /// Execute the Wasm build, optionally through an artifact cache.
    pub fn wasm_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        self.try_wasm_with(cache)
            .unwrap_or_else(|e| panic!("{} wasm: {e}", self.benchmark.name))
    }

    /// Execute the Wasm build, returning the failure (with partial
    /// measurement state) instead of panicking.
    pub fn try_wasm_with(&self, cache: Option<&ArtifactCache>) -> Result<Measurement, RunFailure> {
        let spec = WasmSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            tier_policy: self.tier_policy,
            heap_limit: Some(256 << 20),
            reference_exec: self.reference_exec,
            limits: self.limits,
            entry: "bench_main",
        };
        try_run_wasm_with(&spec, cache)
    }

    /// Execute the compiled-JS build.
    pub fn js(&self) -> Measurement {
        self.js_with(None)
    }

    /// Execute the compiled-JS build, optionally through an artifact cache.
    pub fn js_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        self.try_js_with(cache)
            .unwrap_or_else(|e| panic!("{} js: {e}", self.benchmark.name))
    }

    /// Execute the compiled-JS build, returning the failure (with
    /// partial measurement state) instead of panicking.
    pub fn try_js_with(&self, cache: Option<&ArtifactCache>) -> Result<Measurement, RunFailure> {
        let spec = JsSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            jit: self.jit,
            reference_exec: self.reference_exec,
            limits: self.limits,
            trap_checks: false,
            entry: "bench_main",
        };
        try_run_compiled_js_with(&spec, cache)
    }

    /// Execute the native control build (Fig 6).
    pub fn native(&self) -> Measurement {
        self.native_with(None)
    }

    /// Execute the native control build, optionally through an artifact
    /// cache.
    pub fn native_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        self.try_native_with(cache)
            .unwrap_or_else(|e| panic!("{} native: {e}", self.benchmark.name))
    }

    /// Execute the native control build, returning the failure instead
    /// of panicking.
    pub fn try_native_with(
        &self,
        cache: Option<&ArtifactCache>,
    ) -> Result<Measurement, RunFailure> {
        try_run_native_with(
            self.benchmark.source,
            &self.benchmark.defines(self.size),
            self.level,
            "bench_main",
            self.limits,
            cache,
        )
    }
}
