//! # wb-harness — experiment binaries
//!
//! One binary per paper artifact. Each prints the paper's rows as an
//! aligned text table and writes a CSV under `results/`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig5` | Fig 5 — Wasm/JS time & code size across `-O` levels |
//! | `fig6` | Fig 6 — x86 control across `-O` levels |
//! | `table2` | Table 2 — geomean opt-level ratios (JS/Wasm/x86) |
//! | `compilers` | §4.2.2 — Cheerp vs Emscripten |
//! | `fig9` | Fig 9 + Tables 3–6 — input-size sweep (per browser) |
//! | `fig10` | Fig 10 — JIT on/off speedups |
//! | `table7` | Table 7 — Wasm tier policies on Chrome & Firefox |
//! | `fig11` | Fig 11 — five-number summaries of opt-level ratios |
//! | `fig12_13` | Figs 12/13 + Table 8 — six environments |
//! | `ctxswitch` | §4.5 — JS↔Wasm context-switch microbenchmark |
//! | `table9` | Table 9 — manual JS vs Cheerp JS vs Wasm |
//! | `table10` | Table 10 — Long.js / Hyphenopoly / FFmpeg |
//! | `table12` | Table 12 — Long.js arithmetic operation counts |
//!
//! Shared flags: `--filter <substr>` restricts benchmarks, `--out <dir>`
//! changes the CSV directory, `--quick` runs a reduced grid, `--jobs N`
//! bounds the worker pool (default: `available_parallelism`),
//! `--no-cache` disables the shared artifact cache, `--stats` prints its
//! hit/miss summary and `--reference-exec` runs both VMs on their plain
//! per-op interpreters instead of the fused micro-op engines (the
//! measured numbers are bit-identical either way — this flag exists to
//! prove exactly that). All binaries execute
//! their grid through one [`GridEngine`], which compiles each distinct
//! `(source, defines, level, toolchain, heap)` configuration exactly
//! once per process — measured virtual numbers are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use wb_benchmarks::{Benchmark, InputSize};
use wb_core::report::Table;
use wb_core::{
    run_compiled_js_with, run_native_with, run_wasm_with, ArtifactCache, JsSpec, Measurement,
    WasmSpec,
};
use wb_env::{Environment, JitMode, TierPolicy, Toolchain};
use wb_minic::OptLevel;

/// Minimal CLI flags: `--key value` / `--key=value` / bare `--flag`.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    flags: HashMap<String, String>,
}

impl Cli {
    /// Parse from `std::env::args`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable core of [`Cli::from_env`]).
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = HashMap::new();
        let mut args = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = args.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if args.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = args.next().expect("peeked");
                    flags.insert(stripped.to_string(), v);
                } else {
                    flags.insert(stripped.to_string(), "true".to_string());
                }
            }
        }
        Cli { flags }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Boolean flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Benchmarks after `--filter`. Under `--quick` (and no filter) the
    /// suite is subsampled to every fourth benchmark for a fast smoke
    /// grid that still spans both PolyBench and CHStone.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = wb_benchmarks::all_benchmarks();
        match self.get("filter") {
            Some(f) => all
                .into_iter()
                .filter(|b| b.name.to_lowercase().contains(&f.to_lowercase()))
                .collect(),
            None if self.has("quick") => all.into_iter().step_by(4).collect(),
            None => all,
        }
    }

    /// Worker-thread bound from `--jobs N`. `None` means "use
    /// [`std::thread::available_parallelism`]" (resolved at pool build).
    pub fn jobs(&self) -> Option<usize> {
        self.get("jobs")
            .map(|v| v.parse().expect("--jobs expects a positive integer"))
            .filter(|&n| n > 0)
    }

    /// Whether `--reference-exec` asks for the plain per-op interpreters
    /// (fused micro-op engines disabled in both VMs).
    pub fn reference_exec(&self) -> bool {
        self.has("reference-exec")
    }

    /// Input sizes: all five, or `XS,M,XL` under `--quick`.
    pub fn sizes(&self) -> Vec<InputSize> {
        if self.has("quick") {
            vec![InputSize::XS, InputSize::M, InputSize::XL]
        } else {
            InputSize::ALL.to_vec()
        }
    }

    /// Browser selector for fig9 (`--browser firefox`).
    pub fn environment(&self) -> Environment {
        match self.get("browser").map(|b| b.to_lowercase()) {
            Some(b) if b.starts_with("fire") => {
                Environment::new(wb_env::Browser::Firefox, wb_env::Platform::Desktop)
            }
            Some(b) if b.starts_with("edge") => {
                Environment::new(wb_env::Browser::Edge, wb_env::Platform::Desktop)
            }
            _ => Environment::desktop_chrome(),
        }
    }

    /// CSV output directory (`results/` by default), created on demand.
    pub fn out_dir(&self) -> PathBuf {
        let dir = PathBuf::from(self.get("out").unwrap_or("results"));
        std::fs::create_dir_all(&dir).expect("create results dir");
        dir
    }

    /// Write a table's CSV next to printing it.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.out_dir().join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("[wrote {}]", path.display());
    }
}

/// Run a closure per item on a scoped thread pool, preserving order.
/// The VMs are single-threaded; each worker builds its own.
///
/// Ordering guarantee: workers claim items strictly front-to-back
/// (FIFO), and the result vector is returned in input order regardless
/// of which worker finished when.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_jobs(items, None, f)
}

/// [`parallel_map`] with an explicit worker bound (`--jobs N`). Workers
/// drain the queue front-to-first (FIFO), so cells are claimed in grid
/// order — the first wave of workers hits each distinct compile key
/// early, which maximizes artifact-cache sharing for everyone behind it.
pub fn parallel_map_jobs<T, R, F>(items: Vec<T>, jobs: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n_threads = jobs.unwrap_or(cores).max(1).min(items.len().max(1));
    let items: VecDeque<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(items);
    let results = std::sync::Mutex::new(Vec::<(usize, R)>::new());
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop_front();
                match item {
                    Some((i, t)) => {
                        let r = f(t);
                        results.lock().expect("results lock").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = results.into_inner().expect("results");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// The shared execution engine behind every experiment binary: one
/// process-wide artifact cache (so identical compiles across grid cells
/// and across worker threads happen once), a `--jobs` bound for the
/// thread pool, and a `--stats` summary.
///
/// Flags: `--no-cache` disables artifact sharing (each cell compiles
/// from scratch — the measured virtual numbers are bit-identical either
/// way), `--jobs N` caps worker threads, `--stats` prints cache
/// hit/miss/bytes-saved counters to stderr at the end.
pub struct GridEngine {
    cache: Option<&'static ArtifactCache>,
    jobs: Option<usize>,
    stats: bool,
    reference_exec: bool,
}

impl GridEngine {
    /// Build from CLI flags.
    pub fn from_cli(cli: &Cli) -> Self {
        GridEngine {
            cache: if cli.has("no-cache") {
                None
            } else {
                Some(ArtifactCache::global())
            },
            jobs: cli.jobs(),
            stats: cli.has("stats"),
            reference_exec: cli.reference_exec(),
        }
    }

    /// An engine with explicit settings (testable core of
    /// [`GridEngine::from_cli`]).
    pub fn with_settings(cache: Option<&'static ArtifactCache>, jobs: Option<usize>) -> Self {
        GridEngine {
            cache,
            jobs,
            stats: false,
            reference_exec: false,
        }
    }

    /// [`GridEngine::with_settings`] on the plain per-op interpreters
    /// (`--reference-exec`).
    pub fn with_reference_exec(mut self) -> Self {
        self.reference_exec = true;
        self
    }

    /// Map the grid over the worker pool (order-preserving, FIFO,
    /// bounded by `--jobs`).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_map_jobs(items, self.jobs, f)
    }

    /// Execute a cell's Wasm build through the shared cache.
    pub fn wasm(&self, run: &Run) -> Measurement {
        self.configured(run).wasm_with(self.cache)
    }

    /// Execute a cell's compiled-JS build through the shared cache.
    pub fn js(&self, run: &Run) -> Measurement {
        self.configured(run).js_with(self.cache)
    }

    /// A cell with the engine-wide `--reference-exec` choice applied.
    fn configured(&self, run: &Run) -> Run {
        let mut run = run.clone();
        run.reference_exec |= self.reference_exec;
        run
    }

    /// Execute a cell's native control build through the shared cache.
    pub fn native(&self, run: &Run) -> Measurement {
        run.native_with(self.cache)
    }

    /// Print the `--stats` summary (call once, after the grid).
    pub fn finish(&self) {
        if !self.stats {
            return;
        }
        match self.cache {
            Some(cache) => {
                let s = cache.stats();
                eprintln!(
                    "[cache] {} hits / {} misses ({:.1}% hit rate), {} artifact bytes not re-built",
                    s.hits,
                    s.misses,
                    100.0 * s.hit_rate(),
                    s.bytes_saved
                );
            }
            None => eprintln!("[cache] disabled (--no-cache)"),
        }
    }
}

/// One benchmark run request (a grid cell).
#[derive(Debug, Clone)]
pub struct Run {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Dataset size.
    pub size: InputSize,
    /// Optimization level.
    pub level: OptLevel,
    /// Toolchain.
    pub toolchain: Toolchain,
    /// Environment.
    pub env: Environment,
    /// Wasm tier policy.
    pub tier_policy: TierPolicy,
    /// JS JIT mode.
    pub jit: JitMode,
    /// Use the plain per-op interpreters instead of the fused engines.
    pub reference_exec: bool,
}

impl Run {
    /// Default configuration of a benchmark at a size (the study
    /// baseline: Cheerp `-O2`, desktop Chrome, default tiers).
    pub fn new(benchmark: Benchmark, size: InputSize) -> Self {
        Run {
            benchmark,
            size,
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            tier_policy: TierPolicy::Default,
            jit: JitMode::Enabled,
            reference_exec: false,
        }
    }

    /// Execute the Wasm build.
    pub fn wasm(&self) -> Measurement {
        self.wasm_with(None)
    }

    /// Execute the Wasm build, optionally through an artifact cache.
    pub fn wasm_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        let spec = WasmSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            tier_policy: self.tier_policy,
            heap_limit: Some(256 << 20),
            reference_exec: self.reference_exec,
            entry: "bench_main",
        };
        run_wasm_with(&spec, cache).unwrap_or_else(|e| panic!("{} wasm: {e}", self.benchmark.name))
    }

    /// Execute the compiled-JS build.
    pub fn js(&self) -> Measurement {
        self.js_with(None)
    }

    /// Execute the compiled-JS build, optionally through an artifact cache.
    pub fn js_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        let spec = JsSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            jit: self.jit,
            reference_exec: self.reference_exec,
            entry: "bench_main",
        };
        run_compiled_js_with(&spec, cache)
            .unwrap_or_else(|e| panic!("{} js: {e}", self.benchmark.name))
    }

    /// Execute the native control build (Fig 6).
    pub fn native(&self) -> Measurement {
        self.native_with(None)
    }

    /// Execute the native control build, optionally through an artifact
    /// cache.
    pub fn native_with(&self, cache: Option<&ArtifactCache>) -> Measurement {
        run_native_with(
            self.benchmark.source,
            &self.benchmark.defines(self.size),
            self.level,
            "bench_main",
            cache,
        )
        .unwrap_or_else(|e| panic!("{} native: {e}", self.benchmark.name))
    }
}
