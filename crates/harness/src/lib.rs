//! # wb-harness — experiment binaries
//!
//! One binary per paper artifact. Each prints the paper's rows as an
//! aligned text table and writes a CSV under `results/`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig5` | Fig 5 — Wasm/JS time & code size across `-O` levels |
//! | `fig6` | Fig 6 — x86 control across `-O` levels |
//! | `table2` | Table 2 — geomean opt-level ratios (JS/Wasm/x86) |
//! | `compilers` | §4.2.2 — Cheerp vs Emscripten |
//! | `fig9` | Fig 9 + Tables 3–6 — input-size sweep (per browser) |
//! | `fig10` | Fig 10 — JIT on/off speedups |
//! | `table7` | Table 7 — Wasm tier policies on Chrome & Firefox |
//! | `fig11` | Fig 11 — five-number summaries of opt-level ratios |
//! | `fig12_13` | Figs 12/13 + Table 8 — six environments |
//! | `ctxswitch` | §4.5 — JS↔Wasm context-switch microbenchmark |
//! | `table9` | Table 9 — manual JS vs Cheerp JS vs Wasm |
//! | `table10` | Table 10 — Long.js / Hyphenopoly / FFmpeg |
//! | `table12` | Table 12 — Long.js arithmetic operation counts |
//!
//! Shared flags: `--filter <substr>` restricts benchmarks, `--out <dir>`
//! changes the CSV directory, `--quick` runs a reduced grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::path::PathBuf;
use wb_benchmarks::{Benchmark, InputSize};
use wb_core::report::Table;
use wb_core::{run_compiled_js, run_native, run_wasm, JsSpec, Measurement, WasmSpec};
use wb_env::{Environment, JitMode, TierPolicy, Toolchain};
use wb_minic::OptLevel;

/// Minimal CLI flags: `--key value` / `--key=value` / bare `--flag`.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    flags: HashMap<String, String>,
}

impl Cli {
    /// Parse from `std::env::args`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable core of [`Cli::from_env`]).
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = HashMap::new();
        let mut args = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = args.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if args.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = args.next().expect("peeked");
                    flags.insert(stripped.to_string(), v);
                } else {
                    flags.insert(stripped.to_string(), "true".to_string());
                }
            }
        }
        Cli { flags }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Boolean flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Benchmarks after `--filter`.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = wb_benchmarks::all_benchmarks();
        match self.get("filter") {
            Some(f) => all
                .into_iter()
                .filter(|b| b.name.to_lowercase().contains(&f.to_lowercase()))
                .collect(),
            None => all,
        }
    }

    /// Input sizes: all five, or `XS,M,XL` under `--quick`.
    pub fn sizes(&self) -> Vec<InputSize> {
        if self.has("quick") {
            vec![InputSize::XS, InputSize::M, InputSize::XL]
        } else {
            InputSize::ALL.to_vec()
        }
    }

    /// Browser selector for fig9 (`--browser firefox`).
    pub fn environment(&self) -> Environment {
        match self.get("browser").map(|b| b.to_lowercase()) {
            Some(b) if b.starts_with("fire") => {
                Environment::new(wb_env::Browser::Firefox, wb_env::Platform::Desktop)
            }
            Some(b) if b.starts_with("edge") => {
                Environment::new(wb_env::Browser::Edge, wb_env::Platform::Desktop)
            }
            _ => Environment::desktop_chrome(),
        }
    }

    /// CSV output directory (`results/` by default), created on demand.
    pub fn out_dir(&self) -> PathBuf {
        let dir = PathBuf::from(self.get("out").unwrap_or("results"));
        std::fs::create_dir_all(&dir).expect("create results dir");
        dir
    }

    /// Write a table's CSV next to printing it.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.out_dir().join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("[wrote {}]", path.display());
    }
}

/// Run a closure per item on a scoped thread pool, preserving order.
/// The VMs are single-threaded; each worker builds its own.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let items: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(items);
    let results = std::sync::Mutex::new(Vec::<(usize, R)>::new());
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                match item {
                    Some((i, t)) => {
                        let r = f(t);
                        results.lock().expect("results lock").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = results.into_inner().expect("results");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// One benchmark run request (a grid cell).
#[derive(Debug, Clone)]
pub struct Run {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Dataset size.
    pub size: InputSize,
    /// Optimization level.
    pub level: OptLevel,
    /// Toolchain.
    pub toolchain: Toolchain,
    /// Environment.
    pub env: Environment,
    /// Wasm tier policy.
    pub tier_policy: TierPolicy,
    /// JS JIT mode.
    pub jit: JitMode,
}

impl Run {
    /// Default configuration of a benchmark at a size (the study
    /// baseline: Cheerp `-O2`, desktop Chrome, default tiers).
    pub fn new(benchmark: Benchmark, size: InputSize) -> Self {
        Run {
            benchmark,
            size,
            level: OptLevel::O2,
            toolchain: Toolchain::Cheerp,
            env: Environment::desktop_chrome(),
            tier_policy: TierPolicy::Default,
            jit: JitMode::Enabled,
        }
    }

    /// Execute the Wasm build.
    pub fn wasm(&self) -> Measurement {
        let spec = WasmSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            tier_policy: self.tier_policy,
            heap_limit: Some(256 << 20),
            entry: "bench_main",
        };
        run_wasm(&spec).unwrap_or_else(|e| panic!("{} wasm: {e}", self.benchmark.name))
    }

    /// Execute the compiled-JS build.
    pub fn js(&self) -> Measurement {
        let spec = JsSpec {
            source: self.benchmark.source,
            defines: self.benchmark.defines(self.size),
            level: self.level,
            toolchain: self.toolchain,
            env: self.env,
            jit: self.jit,
            entry: "bench_main",
        };
        run_compiled_js(&spec).unwrap_or_else(|e| panic!("{} js: {e}", self.benchmark.name))
    }

    /// Execute the native control build (Fig 6).
    pub fn native(&self) -> Measurement {
        run_native(
            self.benchmark.source,
            &self.benchmark.defines(self.size),
            self.level,
            "bench_main",
        )
        .unwrap_or_else(|e| panic!("{} native: {e}", self.benchmark.name))
    }
}
