//! Focused tests of the MiniJS standard library surface the backends and
//! manual benchmarks rely on.

use wb_jsvm::{JsValue, JsVm, JsVmConfig};

fn eval(src: &str, call: &str, args: &[JsValue]) -> JsValue {
    let mut vm = JsVm::new(JsVmConfig::reference());
    vm.load(src).expect("loads");
    vm.call(call, args).expect("runs")
}

#[test]
fn math_surface() {
    let src = "function f() {\n\
                 return [Math.floor(2.7), Math.ceil(2.1), Math.round(2.5),\n\
                         Math.trunc(-2.7), Math.abs(-3), Math.min(4, 2, 9),\n\
                         Math.max(4, 2, 9), Math.pow(3, 4), Math.imul(65537, 65537)];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[]) else {
        panic!("array expected")
    };
    let nums: Vec<f64> = v.iter().map(|x| x.as_num().expect("number")).collect();
    assert_eq!(
        nums,
        vec![2.0, 3.0, 3.0, -2.0, 3.0, 2.0, 9.0, 81.0, 131073.0]
    );
}

#[test]
fn math_constants_and_log() {
    let got = eval(
        "function f() { return Math.ceil(Math.log(1024) / Math.LN2); }",
        "f",
        &[],
    );
    assert_eq!(got, JsValue::Num(10.0));
}

#[test]
fn number_bit_reinterpretation() {
    // The typed-array-aliasing analogues used by the compiled-JS i64 path.
    let src = "function f(x) {\n\
                 var hi = Number.f64hi(x);\n\
                 var lo = Number.f64lo(x);\n\
                 return Number.f64frombits(hi, lo);\n\
               }\n\
               function g(x) { return Number.f32frombits(Number.f32bits(x)); }";
    for v in [0.0, 1.5, -2.25, 1e300, -0.0] {
        assert_eq!(eval(src, "f", &[JsValue::Num(v)]), JsValue::Num(v));
    }
    assert_eq!(eval(src, "g", &[JsValue::Num(0.5)]), JsValue::Num(0.5));
}

#[test]
fn string_methods_used_by_benchmarks() {
    let src = "function f(s) {\n\
                 return [s.length, s.charCodeAt(0), s.indexOf('ll'),\n\
                         s.substring(1, 3).length, s.split('l').length];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[JsValue::Str("hello".into())]) else {
        panic!("array expected")
    };
    let nums: Vec<f64> = v.iter().map(|x| x.as_num().expect("number")).collect();
    assert_eq!(nums, vec![5.0, 104.0, 2.0, 2.0, 3.0]);
}

#[test]
fn array_methods_used_by_benchmarks() {
    let src = "function f() {\n\
                 var a = [3, 1];\n\
                 a.push(4);\n\
                 a.push(1, 5);\n\
                 var last = a.pop();\n\
                 return [a.length, a.indexOf(4), last, a.join('-').length];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[]) else {
        panic!("array expected")
    };
    let nums: Vec<f64> = v.iter().map(|x| x.as_num().expect("number")).collect();
    assert_eq!(nums, vec![4.0, 2.0, 5.0, 7.0]);
}

#[test]
fn typed_arrays_clamp_and_wrap_like_js() {
    let src = "function f() {\n\
                 var u = new Uint8Array(2);\n\
                 u[0] = 300;     // wraps to 44\n\
                 u[1] = -1;      // wraps to 255\n\
                 var i = new Int32Array(1);\n\
                 i[0] = 4294967296 + 7; // wraps to 7\n\
                 var d = new Float64Array(1);\n\
                 d[0] = 0.5;\n\
                 return [u[0], u[1], i[0], d[0]];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[]) else {
        panic!("array expected")
    };
    let nums: Vec<f64> = v.iter().map(|x| x.as_num().expect("number")).collect();
    assert_eq!(nums, vec![44.0, 255.0, 7.0, 0.5]);
}

#[test]
fn out_of_bounds_typed_access_is_undefined_not_trap() {
    let src = "function f() { var a = new Float64Array(2); return a[5] === undefined ? 1 : 0; }";
    assert_eq!(eval(src, "f", &[]), JsValue::Num(1.0));
}

#[test]
fn crypto_digest_is_32_bytes_and_stable() {
    let src = "function f() {\n\
                 var d = crypto.sha256('The quick brown fox jumps over the lazy dog');\n\
                 return [d.length, d[0], d[31]];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[]) else {
        panic!("array expected")
    };
    // sha256 of the pangram starts d7a8... ends ...3592.
    assert_eq!(v[0].as_num().expect("number"), 32.0);
    assert_eq!(v[1].as_num().expect("number"), 0xd7 as f64);
    assert_eq!(v[2].as_num().expect("number"), 0x92 as f64);
}

#[test]
fn performance_now_is_monotonic_within_a_run() {
    let src = "function f(n) {\n\
                 var t0 = performance.now();\n\
                 var s = 0;\n\
                 for (var i = 0; i < n; i++) s += i;\n\
                 var t1 = performance.now();\n\
                 return t1 > t0 ? 1 : 0;\n\
               }";
    assert_eq!(eval(src, "f", &[JsValue::Num(50_000.0)]), JsValue::Num(1.0));
}

#[test]
fn typeof_and_equality_corners() {
    let src = "function f() {\n\
                 return [typeof 1 === 'number' ? 1 : 0,\n\
                         typeof 'x' === 'string' ? 1 : 0,\n\
                         typeof f === 'function' ? 1 : 0,\n\
                         null == undefined ? 1 : 0,\n\
                         null === undefined ? 1 : 0,\n\
                         '5' == 5 ? 1 : 0,\n\
                         '5' === 5 ? 1 : 0];\n\
               }";
    let JsValue::Array(v) = eval(src, "f", &[]) else {
        panic!("array expected")
    };
    let nums: Vec<f64> = v.iter().map(|x| x.as_num().expect("number")).collect();
    assert_eq!(nums, vec![1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0]);
}
