//! Fused-vs-reference differential tests for the MiniJS VM, plus
//! inline-cache behaviour tests.
//!
//! The fused overlay and inline caches exist purely to make the host
//! run faster; they must be invisible in every measured quantity. Each
//! differential test runs the same script through both modes
//! (`reference_exec` toggled) and asserts the *entire* report matches
//! to the bit — virtual time, per-bucket clock attribution, per-class
//! and per-tier op counts, Table 12 arithmetic profile, heap statistics
//! and JIT compiles — alongside results and console output.

use wb_env::JitMode;
use wb_jsvm::{JsReport, JsValue, JsVm, JsVmConfig};

fn config(reference_exec: bool, jit: JitMode) -> JsVmConfig {
    let mut cfg = JsVmConfig::reference();
    cfg.jit = jit;
    cfg.reference_exec = reference_exec;
    cfg
}

/// Compare every field of two reports bit-exactly (floats via to_bits).
fn assert_reports_identical(a: &JsReport, b: &JsReport) {
    assert_eq!(a.total.0.to_bits(), b.total.0.to_bits(), "total time");
    assert_eq!(
        a.clock.load_time.0.to_bits(),
        b.clock.load_time.0.to_bits(),
        "load time"
    );
    assert_eq!(
        a.clock.compile_time.0.to_bits(),
        b.clock.compile_time.0.to_bits(),
        "compile time"
    );
    assert_eq!(
        a.clock.exec_time.0.to_bits(),
        b.clock.exec_time.0.to_bits(),
        "exec time"
    );
    assert_eq!(
        a.clock.gc_time.0.to_bits(),
        b.clock.gc_time.0.to_bits(),
        "gc time"
    );
    assert_eq!(a.counts.0, b.counts.0, "op counts by class");
    assert_eq!(
        a.interp_counts.0, b.interp_counts.0,
        "interp-tier op counts"
    );
    assert_eq!(a.heap, b.heap, "heap stats");
    assert_eq!(a.arith, b.arith, "arith profile");
    assert_eq!(a.jit_compiles, b.jit_compiles, "jit compiles");
    assert_eq!(a.code_ops, b.code_ops, "code ops");
}

/// Run `entry(args)` after loading `src` in both modes, under both JIT
/// settings; assert results, output and reports all match. Returns the
/// (common) result from the JIT-enabled run.
fn run_both(src: &str, entry: &str, args: &[JsValue]) -> JsValue {
    let mut result = None;
    for jit in [JitMode::Enabled, JitMode::Disabled] {
        let mut outcome: Option<(JsValue, Vec<String>, JsReport)> = None;
        for reference_exec in [true, false] {
            let mut vm = JsVm::new(config(reference_exec, jit));
            vm.load(src).expect("script loads");
            let r = vm.call(entry, args).expect("call succeeds");
            let report = vm.report();
            match &outcome {
                None => outcome = Some((r, vm.output.clone(), report)),
                Some((ref_r, ref_out, ref_report)) => {
                    assert_eq!(*ref_r, r, "result (jit {jit:?})");
                    assert_eq!(*ref_out, vm.output, "console output (jit {jit:?})");
                    assert_reports_identical(ref_report, &report);
                }
            }
        }
        if jit == JitMode::Enabled {
            result = outcome.map(|(r, _, _)| r);
        }
    }
    result.unwrap()
}

#[test]
fn hot_numeric_loop_matches() {
    // Exercises LCCmpJf / LLCmpJf, LCBinStore (i++), LLBinStore and
    // tier-up under JIT.
    let src = "function sum(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < n; i = i + 1) { s = s + i; }\n\
               return s;\n\
             }";
    assert_eq!(
        run_both(src, "sum", &[JsValue::Num(20000.0)]),
        JsValue::Num(199990000.0)
    );
}

#[test]
fn typed_array_kernel_matches() {
    // Exercises LLGetIndex / SetIndexIc on Float64Array, including the
    // JIT typed-array counting split (ta_counts).
    let src = "function dot(n) {\n\
               var a = new Float64Array(n);\n\
               var b = new Float64Array(n);\n\
               for (var i = 0; i < n; i = i + 1) { a[i] = i * 0.5; b[i] = 2; }\n\
               var s = 0;\n\
               for (var i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }\n\
               return s;\n\
             }";
    assert_eq!(
        run_both(src, "dot", &[JsValue::Num(5000.0)]),
        JsValue::Num((0..5000).map(|i| i as f64 * 0.5 * 2.0).sum::<f64>())
    );
}

#[test]
fn int32_and_u8_arrays_match() {
    let src = "function mix(n) {\n\
               var a = new Int32Array(n);\n\
               var b = new Uint8Array(n);\n\
               for (var i = 0; i < n; i = i + 1) { a[i] = i * 7; b[i] = i * 3; }\n\
               var s = 0;\n\
               for (var i = 0; i < n; i = i + 1) { s = s + (a[i] ^ b[i]); }\n\
               return s;\n\
             }";
    let expect: i32 = (0..2000).map(|i| (i * 7) ^ ((i * 3) & 0xff)).sum();
    assert_eq!(
        run_both(src, "mix", &[JsValue::Num(2000.0)]),
        JsValue::Num(expect as f64)
    );
}

#[test]
fn plain_arrays_and_growth_match() {
    // Plain-array stores resize (bytes_since_gc growth) and must stay
    // on the reference path; reads may use the IC.
    let src = "function build(n) {\n\
               var a = [];\n\
               for (var i = 0; i < n; i = i + 1) { a[i] = i * 2; }\n\
               var s = 0;\n\
               for (var i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               return s;\n\
             }";
    assert_eq!(
        run_both(src, "build", &[JsValue::Num(3000.0)]),
        JsValue::Num((0..3000).map(|i| (i * 2) as f64).sum())
    );
}

#[test]
fn string_paths_fall_back_and_match() {
    // String concatenation (allocating Add) and string indexing
    // (allocating GetIndex) must take the reference path — and still
    // produce identical measurements.
    let src = "function weave(n) {\n\
               var s = '';\n\
               for (var i = 0; i < n; i = i + 1) { s = s + 'ab'[i % 2]; }\n\
               return s.length;\n\
             }";
    assert_eq!(
        run_both(src, "weave", &[JsValue::Num(64.0)]),
        JsValue::Num(64.0)
    );
}

#[test]
fn gc_churn_matches() {
    // Allocation churn with GC in the middle of fused loops: pause
    // charges, heap stats and post-GC cache invalidation must all be
    // measurement-invisible.
    let src = "function churn(n) {\n\
               var keep = [];\n\
               for (var i = 0; i < n; i = i + 1) {\n\
                 var t = [i, i + 1, i + 2];\n\
                 if (i % 50 === 0) { keep.push(t); }\n\
               }\n\
               var s = 0;\n\
               for (var j = 0; j < keep.length; j = j + 1) { s = s + keep[j][0]; }\n\
               return s;\n\
             }";
    let mut outcome: Option<(JsValue, JsReport)> = None;
    for reference_exec in [true, false] {
        let mut cfg = config(reference_exec, JitMode::Enabled);
        cfg.profile.gc.trigger_bytes = 16 * 1024;
        let mut vm = JsVm::new(cfg);
        vm.load(src).unwrap();
        let r = vm.call("churn", &[JsValue::Num(4000.0)]).unwrap();
        let report = vm.report();
        assert!(report.heap.gc_count > 0, "GC must have run");
        match &outcome {
            None => outcome = Some((r, report)),
            Some((ref_r, ref_report)) => {
                assert_eq!(*ref_r, r);
                assert_reports_identical(ref_report, &report);
            }
        }
    }
}

#[test]
fn mixed_arithmetic_and_compares_match() {
    let src = "function f(n) {\n\
               var x = 1.5;\n\
               var k = 0;\n\
               for (var i = 1; i <= n; i = i + 1) {\n\
                 x = (x * 3.0) % 97.0 + i / 7.0 - (i % 5);\n\
                 if (x > 50.0) { k = k + 1; }\n\
                 if (x === 12.0) { k = k + 100; }\n\
               }\n\
               return k + x;\n\
             }";
    run_both(src, "f", &[JsValue::Num(5000.0)]);
}

// ---- inline-cache behaviour ---------------------------------------------

#[test]
fn ic_hits_dominate_on_monomorphic_typed_loops() {
    let src = "function fill(n) {\n\
               var a = new Float64Array(n);\n\
               for (var i = 0; i < n; i = i + 1) { a[i] = i; }\n\
               var s = 0;\n\
               for (var i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               return s;\n\
             }";
    let mut vm = JsVm::new(JsVmConfig::reference());
    vm.load(src).unwrap();
    vm.call("fill", &[JsValue::Num(10000.0)]).unwrap();
    let (hits, misses) = vm.ic_stats();
    assert!(hits > 15000, "expected ~2n hits, got {hits}");
    assert!(
        misses <= 4,
        "monomorphic sites should miss at most once each, got {misses}"
    );
}

#[test]
fn ic_misses_on_receiver_change() {
    // The same call site alternates between two arrays: each swap is a
    // miss (monomorphic cache keyed on the receiver reference).
    let src = "var a = new Float64Array(4);\n\
             var b = new Float64Array(4);\n\
             function pick(flag, i) { var t = flag ? a : b; return t[i]; }";
    let mut vm = JsVm::new(JsVmConfig::reference());
    vm.load(src).unwrap();
    for i in 0..10 {
        let flag = JsValue::Bool(i % 2 == 0);
        vm.call("pick", &[flag, JsValue::Num(1.0)]).unwrap();
    }
    let (_, misses) = vm.ic_stats();
    assert!(
        misses >= 10,
        "alternating receivers must keep missing, got {misses}"
    );
}

#[test]
fn ic_invalidated_by_gc() {
    // A GC between accesses bumps the heap generation, so the next
    // access misses even with the same receiver.
    let src = "var a = new Float64Array(8);\n\
             function read(i) { return a[i]; }\n\
             function churn(n) {\n\
               for (var i = 0; i < n; i = i + 1) { var t = [i, i, i, i]; }\n\
               return 0;\n\
             }";
    let mut cfg = JsVmConfig::reference();
    cfg.profile.gc.trigger_bytes = 8 * 1024;
    let mut vm = JsVm::new(cfg);
    vm.load(src).unwrap();

    vm.call("read", &[JsValue::Num(1.0)]).unwrap(); // fill
    vm.call("read", &[JsValue::Num(2.0)]).unwrap(); // hit
    let (hits_before, misses_before) = vm.ic_stats();
    assert!(hits_before >= 1);

    vm.call("churn", &[JsValue::Num(2000.0)]).unwrap(); // forces GC
    assert!(vm.report().heap.gc_count > 0, "churn must trigger GC");

    vm.call("read", &[JsValue::Num(3.0)]).unwrap(); // miss: generation moved
    let (_, misses_after) = vm.ic_stats();
    assert!(
        misses_after > misses_before,
        "GC must invalidate the cache ({misses_before} -> {misses_after})"
    );

    vm.call("read", &[JsValue::Num(4.0)]).unwrap(); // re-filled: hit again
    let (hits_final, misses_final) = vm.ic_stats();
    assert_eq!(misses_final, misses_after, "refill restores hits");
    assert!(hits_final > hits_before);
}
