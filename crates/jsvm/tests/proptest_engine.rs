//! Property tests for the MiniJS engine: the front end never panics, the
//! arithmetic core matches a Rust reference model, and the GC never frees
//! reachable data.

use proptest::prelude::*;
use wb_jsvm::{JsValue, JsVm, JsVmConfig};

#[derive(Debug, Clone)]
enum NumExpr {
    Const(f64),
    Var(u8),
    Add(Box<NumExpr>, Box<NumExpr>),
    Sub(Box<NumExpr>, Box<NumExpr>),
    Mul(Box<NumExpr>, Box<NumExpr>),
    Div(Box<NumExpr>, Box<NumExpr>),
    Neg(Box<NumExpr>),
    Ternary(Box<NumExpr>, Box<NumExpr>, Box<NumExpr>),
}

fn num_expr() -> impl Strategy<Value = NumExpr> {
    let leaf = prop_oneof![
        (-1.0e6f64..1.0e6).prop_map(NumExpr::Const),
        (0u8..3).prop_map(NumExpr::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NumExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NumExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NumExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NumExpr::Div(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| NumExpr::Neg(Box::new(a))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| NumExpr::Ternary(Box::new(c), Box::new(a), Box::new(b))),
        ]
    })
}

fn to_js(e: &NumExpr) -> String {
    match e {
        NumExpr::Const(v) => format!("({v:?})"),
        NumExpr::Var(i) => format!("p{i}"),
        NumExpr::Add(a, b) => format!("({} + {})", to_js(a), to_js(b)),
        NumExpr::Sub(a, b) => format!("({} - {})", to_js(a), to_js(b)),
        NumExpr::Mul(a, b) => format!("({} * {})", to_js(a), to_js(b)),
        NumExpr::Div(a, b) => format!("({} / {})", to_js(a), to_js(b)),
        NumExpr::Neg(a) => format!("(-{})", to_js(a)),
        NumExpr::Ternary(c, a, b) => {
            format!("(({}) ? ({}) : ({}))", to_js(c), to_js(a), to_js(b))
        }
    }
}

fn eval_ref(e: &NumExpr, vars: &[f64; 3]) -> f64 {
    match e {
        NumExpr::Const(v) => *v,
        NumExpr::Var(i) => vars[*i as usize],
        NumExpr::Add(a, b) => eval_ref(a, vars) + eval_ref(b, vars),
        NumExpr::Sub(a, b) => eval_ref(a, vars) - eval_ref(b, vars),
        NumExpr::Mul(a, b) => eval_ref(a, vars) * eval_ref(b, vars),
        NumExpr::Div(a, b) => eval_ref(a, vars) / eval_ref(b, vars),
        NumExpr::Neg(a) => -eval_ref(a, vars),
        NumExpr::Ternary(c, a, b) => {
            let cv = eval_ref(c, vars);
            if cv != 0.0 && !cv.is_nan() {
                eval_ref(a, vars)
            } else {
                eval_ref(b, vars)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC*") {
        let _ = wb_jsvm::compile_script(&src); // may Err, must not panic
    }

    #[test]
    fn parser_never_panics_on_jsish_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("function".to_string()),
                Just("var".to_string()),
                Just("if".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just("+".to_string()),
                Just("=".to_string()),
                Just("x".to_string()),
                Just("42".to_string()),
                Just("'s'".to_string()),
                Just("return".to_string()),
            ],
            0..64,
        )
    ) {
        let src = tokens.join(" ");
        let _ = wb_jsvm::compile_script(&src);
    }

    #[test]
    fn numeric_expressions_match_reference(
        e in num_expr(),
        vars in [ -1.0e4f64..1.0e4, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4],
    ) {
        let src = format!(
            "function f(p0, p1, p2) {{ return {}; }}",
            to_js(&e)
        );
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(&src).expect("generated source parses");
        let got = vm
            .call("f", &[JsValue::Num(vars[0]), JsValue::Num(vars[1]), JsValue::Num(vars[2])])
            .expect("runs");
        let want = eval_ref(&e, &vars);
        match got {
            JsValue::Num(g) => {
                prop_assert!(
                    g.to_bits() == want.to_bits() || (g.is_nan() && want.is_nan()),
                    "{src} -> {g} vs {want}"
                );
            }
            other => prop_assert!(false, "non-numeric result {other:?}"),
        }
    }

    #[test]
    fn gc_never_frees_reachable_data(
        keep_every in 1usize..16,
        n in 100usize..2000,
        trigger in (8u64..64).prop_map(|k| k * 1024),
    ) {
        let src = format!(
            "function churn() {{\n\
               var keep = [];\n\
               for (var i = 0; i < {n}; i++) {{\n\
                 var t = [i, i * 2, 'x' + i];\n\
                 if (i % {keep_every} === 0) keep.push(t);\n\
               }}\n\
               var sum = 0;\n\
               for (var j = 0; j < keep.length; j++) sum += keep[j][1];\n\
               return sum;\n\
             }}"
        );
        let mut cfg = JsVmConfig::reference();
        cfg.profile.gc.trigger_bytes = trigger;
        let mut vm = JsVm::new(cfg);
        vm.load(&src).expect("loads");
        let got = vm.call("churn", &[]).expect("runs").as_num();
        let want: f64 = (0..n)
            .filter(|i| i % keep_every == 0)
            .map(|i| (i * 2) as f64)
            .sum();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn step_budget_always_terminates(budget in 1000u64..100_000) {
        let mut cfg = JsVmConfig::reference();
        cfg.max_steps = budget;
        let mut vm = JsVm::new(cfg);
        vm.load("function spin() { while (1) { } }").expect("loads");
        let r = vm.call("spin", &[]);
        prop_assert!(matches!(r, Err(wb_jsvm::JsError::StepBudgetExhausted)));
    }
}
