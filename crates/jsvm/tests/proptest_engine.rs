//! Randomized (deterministic, LCG-seeded) tests for the MiniJS engine:
//! the front end never panics, the arithmetic core matches a Rust
//! reference model, and the GC never frees reachable data. Each case
//! prints its seed on failure.

use wb_env::rng::Lcg;
use wb_jsvm::{JsValue, JsVm, JsVmConfig};

#[derive(Debug, Clone)]
enum NumExpr {
    Const(f64),
    Var(u8),
    Add(Box<NumExpr>, Box<NumExpr>),
    Sub(Box<NumExpr>, Box<NumExpr>),
    Mul(Box<NumExpr>, Box<NumExpr>),
    Div(Box<NumExpr>, Box<NumExpr>),
    Neg(Box<NumExpr>),
    Ternary(Box<NumExpr>, Box<NumExpr>, Box<NumExpr>),
}

fn gen_leaf(rng: &mut Lcg) -> NumExpr {
    if rng.chance(1, 2) {
        NumExpr::Const(rng.range_f64(-1.0e6, 1.0e6))
    } else {
        NumExpr::Var(rng.index(3) as u8)
    }
}

fn gen_num_expr(rng: &mut Lcg, depth: usize) -> NumExpr {
    if depth == 0 || rng.chance(1, 4) {
        return gen_leaf(rng);
    }
    match rng.index(6) {
        0 => NumExpr::Add(
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
        ),
        1 => NumExpr::Sub(
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
        ),
        2 => NumExpr::Mul(
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
        ),
        3 => NumExpr::Div(
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
        ),
        4 => NumExpr::Neg(Box::new(gen_num_expr(rng, depth - 1))),
        _ => NumExpr::Ternary(
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
            Box::new(gen_num_expr(rng, depth - 1)),
        ),
    }
}

fn to_js(e: &NumExpr) -> String {
    match e {
        NumExpr::Const(v) => format!("({v:?})"),
        NumExpr::Var(i) => format!("p{i}"),
        NumExpr::Add(a, b) => format!("({} + {})", to_js(a), to_js(b)),
        NumExpr::Sub(a, b) => format!("({} - {})", to_js(a), to_js(b)),
        NumExpr::Mul(a, b) => format!("({} * {})", to_js(a), to_js(b)),
        NumExpr::Div(a, b) => format!("({} / {})", to_js(a), to_js(b)),
        NumExpr::Neg(a) => format!("(-{})", to_js(a)),
        NumExpr::Ternary(c, a, b) => {
            format!("(({}) ? ({}) : ({}))", to_js(c), to_js(a), to_js(b))
        }
    }
}

fn eval_ref(e: &NumExpr, vars: &[f64; 3]) -> f64 {
    match e {
        NumExpr::Const(v) => *v,
        NumExpr::Var(i) => vars[*i as usize],
        NumExpr::Add(a, b) => eval_ref(a, vars) + eval_ref(b, vars),
        NumExpr::Sub(a, b) => eval_ref(a, vars) - eval_ref(b, vars),
        NumExpr::Mul(a, b) => eval_ref(a, vars) * eval_ref(b, vars),
        NumExpr::Div(a, b) => eval_ref(a, vars) / eval_ref(b, vars),
        NumExpr::Neg(a) => -eval_ref(a, vars),
        NumExpr::Ternary(c, a, b) => {
            let cv = eval_ref(c, vars);
            if cv != 0.0 && !cv.is_nan() {
                eval_ref(a, vars)
            } else {
                eval_ref(b, vars)
            }
        }
    }
}

#[test]
fn lexer_and_parser_never_panic() {
    // Random printable-ish strings, including multi-byte chars.
    let alphabet: Vec<char> =
        ("abcXYZ012 \t\n(){};=+-*/<>!&|'\"\\.,:?[]_%#~^\u{e9}\u{3bb}\u{1f600}")
            .chars()
            .collect();
    for seed in 0..128u64 {
        let mut rng = Lcg::new(seed);
        let src: String = (0..rng.index(200))
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect();
        let _ = wb_jsvm::compile_script(&src); // may Err, must not panic
    }
}

#[test]
fn parser_never_panics_on_jsish_soup() {
    let tokens = [
        "function", "var", "if", "(", ")", "{", "}", ";", "+", "=", "x", "42", "'s'", "return",
    ];
    for seed in 0..128u64 {
        let mut rng = Lcg::new(1000 + seed);
        let n = rng.index(64);
        let src = (0..n)
            .map(|_| tokens[rng.index(tokens.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = wb_jsvm::compile_script(&src);
    }
}

#[test]
fn numeric_expressions_match_reference() {
    for seed in 0..128u64 {
        let mut rng = Lcg::new(2000 + seed);
        let e = gen_num_expr(&mut rng, 4);
        let vars = [
            rng.range_f64(-1.0e4, 1.0e4),
            rng.range_f64(-1.0e4, 1.0e4),
            rng.range_f64(-1.0e4, 1.0e4),
        ];
        let src = format!("function f(p0, p1, p2) {{ return {}; }}", to_js(&e));
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(&src).expect("generated source parses");
        let got = vm
            .call(
                "f",
                &[
                    JsValue::Num(vars[0]),
                    JsValue::Num(vars[1]),
                    JsValue::Num(vars[2]),
                ],
            )
            .expect("runs");
        let want = eval_ref(&e, &vars);
        match got {
            JsValue::Num(g) => {
                assert!(
                    g.to_bits() == want.to_bits() || (g.is_nan() && want.is_nan()),
                    "seed {seed}: {src} -> {g} vs {want}"
                );
            }
            other => panic!("seed {seed}: non-numeric result {other:?}"),
        }
    }
}

#[test]
fn gc_never_frees_reachable_data() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(3000 + seed);
        let keep_every = 1 + rng.index(15);
        let n = 100 + rng.index(1900);
        let trigger = (8 + rng.below(56)) * 1024;
        let src = format!(
            "function churn() {{\n\
               var keep = [];\n\
               for (var i = 0; i < {n}; i++) {{\n\
                 var t = [i, i * 2, 'x' + i];\n\
                 if (i % {keep_every} === 0) keep.push(t);\n\
               }}\n\
               var sum = 0;\n\
               for (var j = 0; j < keep.length; j++) sum += keep[j][1];\n\
               return sum;\n\
             }}"
        );
        let mut cfg = JsVmConfig::reference();
        cfg.profile.gc.trigger_bytes = trigger;
        let mut vm = JsVm::new(cfg);
        vm.load(&src).expect("loads");
        let got = vm
            .call("churn", &[])
            .expect("runs")
            .as_num()
            .expect("number");
        let want: f64 = (0..n)
            .filter(|i| i % keep_every == 0)
            .map(|i| (i * 2) as f64)
            .sum();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn step_budget_always_terminates() {
    for seed in 0..16u64 {
        let mut rng = Lcg::new(4000 + seed);
        let budget = 1000 + rng.below(99_000);
        let mut cfg = JsVmConfig::reference();
        cfg.limits.fuel = Some(budget);
        let mut vm = JsVm::new(cfg);
        vm.load("function spin() { while (1) { } }").expect("loads");
        let r = vm.call("spin", &[]);
        assert!(
            matches!(r, Err(wb_jsvm::JsError::StepBudgetExhausted)),
            "seed {seed}"
        );
    }
}
