//! Static cost-equivalence audit of the MiniJS fusion overlay.
//!
//! Mirror of `wb_wasm_vm::audit` for the JS engine: every fused form in
//! [`fuse`](crate::fuse) is symbolically expanded for every operator it
//! can carry (all 11 [`BinKind`]s, all 8 [`CmpKind`]s, every inline-cache
//! shape) and its charge plan — op-class bumps, Table 12 arithmetic
//! bumps, typed-array-aware index counts — is compared event-for-event
//! against the plain interpreter's plans for the constituent opcodes.
//!
//! Two structural facts make the remaining behavior trivially equivalent
//! and are therefore *documented* rather than audited per instance:
//!
//! * fused guards run **before** any charge, so an IC miss or non-`Num`
//!   operand falls back with the virtual-cost state untouched and the
//!   plain loop replays the reference path exactly;
//! * fused fast paths never allocate, never resize heap objects and never
//!   note hotness, so GC safe-points and tier transitions coincide with
//!   the reference at every op boundary. The one permitted divergence is
//!   step-budget batching per group (checked as a total here).
//!
//! Index counts are compared as symbolic `index(load|store)` events:
//! the fused [`count_cached_index`] and the reference `count_index_op`
//! route to `ta_counts` vs `tier_counts` by the *same* (typed, tier)
//! predicate, and the IC guarantees the fused `typed` bit equals what the
//! reference would recompute from the receiver.

use crate::bytecode::{Chunk, Const, Op};
use crate::fuse::{match_at, BinKind, CmpKind, FOp};
use wb_env::OpClass;

/// One audited (family, operator) instance.
#[derive(Debug, Clone)]
pub struct FusionAuditEntry {
    /// Fused family name (e.g. `"LLBinStore"`).
    pub family: &'static str,
    /// Instance label (family plus the carried operator).
    pub instance: String,
    /// Source opcodes the fused form covers.
    pub constituents: Vec<String>,
    /// The fused form's charge plan, one event per line.
    pub fused_charges: Vec<String>,
    /// The plain interpreter's concatenated charge plan.
    pub reference_charges: Vec<String>,
    /// Whether the plans agree (and the overlay round-trips).
    pub ok: bool,
    /// Human-readable reason when `ok` is false.
    pub detail: Option<String>,
}

/// A single observable cost event; `Step` totals are compared separately
/// (budget batching is the documented divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// One `tier_counts[tier].bump(class, 1)`.
    Class(OpClass),
    /// One Table 12 arithmetic-profile bump (field name).
    Arith(&'static str),
    /// One typed-array-aware index count (`count_index_op` /
    /// `count_cached_index` — identical routing on (typed, tier)).
    Index {
        /// Whether it counts as a store.
        store: bool,
    },
}

impl Ev {
    fn render(&self) -> String {
        match self {
            Ev::Class(c) => format!("class:{c:?}"),
            Ev::Arith(field) => format!("arith:{field}"),
            Ev::Index { store: false } => "index:load".into(),
            Ev::Index { store: true } => "index:store".into(),
        }
    }
}

/// The source opcode a [`BinKind`] was lifted from. Exhaustive — a new
/// `BinKind` variant fails to compile until the audit covers it.
fn op_of_bin(op: BinKind) -> Op {
    match op {
        BinKind::Add => Op::Add,
        BinKind::Sub => Op::Sub,
        BinKind::Mul => Op::Mul,
        BinKind::Div => Op::Div,
        BinKind::Mod => Op::Mod,
        BinKind::BitAnd => Op::BitAnd,
        BinKind::BitOr => Op::BitOr,
        BinKind::BitXor => Op::BitXor,
        BinKind::Shl => Op::Shl,
        BinKind::Shr => Op::Shr,
        BinKind::UShr => Op::UShr,
    }
}

/// Exhaustive `CmpKind` → source opcode map.
fn op_of_cmp(op: CmpKind) -> Op {
    match op {
        CmpKind::Lt => Op::Lt,
        CmpKind::Gt => Op::Gt,
        CmpKind::Le => Op::Le,
        CmpKind::Ge => Op::Ge,
        CmpKind::EqEq => Op::EqEq,
        CmpKind::NotEq => Op::NotEq,
        CmpKind::StrictEq => Op::StrictEq,
        CmpKind::StrictNe => Op::StrictNe,
    }
}

const ALL_BINS: [BinKind; 11] = [
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::Div,
    BinKind::Mod,
    BinKind::BitAnd,
    BinKind::BitOr,
    BinKind::BitXor,
    BinKind::Shl,
    BinKind::Shr,
    BinKind::UShr,
];

const ALL_CMPS: [CmpKind; 8] = [
    CmpKind::Lt,
    CmpKind::Gt,
    CmpKind::Le,
    CmpKind::Ge,
    CmpKind::EqEq,
    CmpKind::NotEq,
    CmpKind::StrictEq,
    CmpKind::StrictNe,
];

/// The `run()` loop's Table 12 bump for a source opcode (mirrors the
/// arith match in `vm.rs`; ops outside that table bump nothing).
fn ref_arith(op: &Op) -> Option<&'static str> {
    match op {
        Op::Add | Op::Sub => Some("add"),
        Op::Mul => Some("mul"),
        Op::Div => Some("div"),
        Op::Mod => Some("rem"),
        Op::Shl | Op::Shr | Op::UShr => Some("shift"),
        Op::BitAnd => Some("and"),
        Op::BitOr | Op::BitXor => Some("or"),
        _ => None,
    }
}

/// `VmState::bump_bin`'s Table 12 field for a fused binary op —
/// exhaustive so the audit and the VM can't drift silently.
fn fused_arith(op: BinKind) -> &'static str {
    match op {
        BinKind::Add | BinKind::Sub => "add",
        BinKind::Mul => "mul",
        BinKind::Div => "div",
        BinKind::Mod => "rem",
        BinKind::Shl | BinKind::Shr | BinKind::UShr => "shift",
        BinKind::BitAnd => "and",
        BinKind::BitOr | BinKind::BitXor => "or",
    }
}

/// The plain interpreter's charge plan: per opcode, one step, then its
/// class bump (index ops count inside their handler instead), then its
/// Table 12 bump — the exact order of the `run()` loop.
fn reference_plan(ops: &[Op]) -> (u64, Vec<Ev>) {
    let mut evs = Vec::new();
    for op in ops {
        match op {
            Op::GetIndex => evs.push(Ev::Index { store: false }),
            Op::SetIndex => evs.push(Ev::Index { store: true }),
            other => {
                evs.push(Ev::Class(other.class()));
                if let Some(field) = ref_arith(other) {
                    evs.push(Ev::Arith(field));
                }
            }
        }
    }
    (ops.len() as u64, evs)
}

/// The fused path's charge plan, transcribing the `exec_fused` arms in
/// `vm.rs` event-for-event. Wildcard-free: a new `FOp` variant fails to
/// compile until the audit covers it.
fn fused_plan(fop: &FOp) -> (u64, Vec<Ev>) {
    let mut evs = Vec::new();
    let steps = match fop {
        FOp::LLBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(op.class()));
            evs.push(Ev::Arith(fused_arith(*op)));
            3
        }
        FOp::LLBinStore { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(op.class()));
            evs.push(Ev::Arith(fused_arith(*op)));
            evs.push(Ev::Class(OpClass::Local));
            4
        }
        FOp::LCBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            evs.push(Ev::Class(op.class()));
            evs.push(Ev::Arith(fused_arith(*op)));
            3
        }
        FOp::LCBinStore { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            evs.push(Ev::Class(op.class()));
            evs.push(Ev::Arith(fused_arith(*op)));
            evs.push(Ev::Class(OpClass::Local));
            4
        }
        FOp::CStore { .. } => {
            evs.push(Ev::Class(OpClass::Const));
            evs.push(Ev::Class(OpClass::Local));
            2
        }
        FOp::CmpJf { .. } => {
            evs.push(Ev::Class(OpClass::Compare));
            evs.push(Ev::Class(OpClass::Branch));
            2
        }
        FOp::LLCmpJf { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Compare));
            evs.push(Ev::Class(OpClass::Branch));
            4
        }
        FOp::LCCmpJf { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            evs.push(Ev::Class(OpClass::Compare));
            evs.push(Ev::Class(OpClass::Branch));
            4
        }
        FOp::LLGetIndex { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Index { store: false });
            3
        }
        FOp::GetIndexIc { .. } => {
            evs.push(Ev::Index { store: false });
            1
        }
        FOp::SetIndexIc { pop, .. } => {
            evs.push(Ev::Index { store: true });
            if *pop {
                evs.push(Ev::Class(OpClass::Other));
            }
            1 + *pop as u64
        }
    };
    (steps, evs)
}

/// Family name of a fused form (wildcard-free on purpose).
fn family_of(fop: &FOp) -> &'static str {
    match fop {
        FOp::LLBin { .. } => "LLBin",
        FOp::LLBinStore { .. } => "LLBinStore",
        FOp::LCBin { .. } => "LCBin",
        FOp::LCBinStore { .. } => "LCBinStore",
        FOp::CStore { .. } => "CStore",
        FOp::CmpJf { .. } => "CmpJf",
        FOp::LLCmpJf { .. } => "LLCmpJf",
        FOp::LCCmpJf { .. } => "LCCmpJf",
        FOp::LLGetIndex { .. } => "LLGetIndex",
        FOp::GetIndexIc { .. } => "GetIndexIc",
        FOp::SetIndexIc { pop: false, .. } => "SetIndexIc",
        FOp::SetIndexIc { pop: true, .. } => "SetIndexPopIc",
    }
}

/// Every (family, constituent-sequence) instance the overlay builder can
/// produce. Numeric-constant pools and jump offsets are placeholders —
/// charge plans do not depend on them.
fn enumerate_instances() -> Vec<(&'static str, String, Vec<Op>)> {
    let mut out = Vec::new();
    let ll = |i| Op::LoadLocal(i);
    for &bin in &ALL_BINS {
        let b = op_of_bin(bin);
        let label = format!("{bin:?}");
        out.push(("LLBin", label.clone(), vec![ll(0), ll(1), b.clone()]));
        out.push((
            "LLBinStore",
            label.clone(),
            vec![ll(0), ll(1), b.clone(), Op::StoreLocal(2)],
        ));
        out.push(("LCBin", label.clone(), vec![ll(0), Op::Const(0), b.clone()]));
        out.push((
            "LCBinStore",
            label,
            vec![ll(0), Op::Const(0), b, Op::StoreLocal(2)],
        ));
    }
    for &cmp in &ALL_CMPS {
        let c = op_of_cmp(cmp);
        let label = format!("{cmp:?}");
        out.push(("CmpJf", label.clone(), vec![c.clone(), Op::JumpIfFalse(1)]));
        out.push((
            "LLCmpJf",
            label.clone(),
            vec![ll(0), ll(1), c.clone(), Op::JumpIfFalse(1)],
        ));
        out.push((
            "LCCmpJf",
            label,
            vec![ll(0), Op::Const(0), c, Op::JumpIfFalse(1)],
        ));
    }
    out.push((
        "CStore",
        "Num".into(),
        vec![Op::Const(0), Op::StoreLocal(2)],
    ));
    out.push(("LLGetIndex", "ic".into(), vec![ll(0), ll(1), Op::GetIndex]));
    out.push(("GetIndexIc", "ic".into(), vec![Op::GetIndex]));
    out.push(("SetIndexIc", "ic".into(), vec![Op::SetIndex]));
    out.push(("SetIndexPopIc", "ic".into(), vec![Op::SetIndex, Op::Pop]));
    out
}

/// Audit every fused form the MiniJS overlay can emit. An entry is `ok`
/// when the overlay builder recognizes the constituents as the expected
/// family at the full width and the fused charge plan equals the plain
/// interpreter's concatenation event-for-event.
pub fn audit_fusion_table() -> Vec<FusionAuditEntry> {
    let mut entries = Vec::new();
    for (family, label, ops) in enumerate_instances() {
        let chunk = Chunk {
            code: ops.clone(),
            consts: vec![Const::Num(1.0)],
            ..Default::default()
        };
        let mut next_ic = 0u32;
        let mut detail = None;
        let mut fused_rendered = Vec::new();
        let (ref_steps, ref_evs) = reference_plan(&ops);

        match match_at(&chunk, 0, &mut next_ic) {
            Some(fop) if fop.width() == ops.len() && family_of(&fop) == family => {
                let (steps, evs) = fused_plan(&fop);
                fused_rendered = evs.iter().map(Ev::render).collect();
                if steps != ref_steps {
                    detail = Some(format!("step total {steps} != reference {ref_steps}"));
                } else if evs != ref_evs {
                    detail = Some("charge plans differ".into());
                }
            }
            Some(fop) => {
                detail = Some(format!(
                    "overlay mismatch: got {} at width {}, expected {family} at width {}",
                    family_of(&fop),
                    fop.width(),
                    ops.len()
                ));
            }
            None => detail = Some("constituents did not fuse".into()),
        }

        entries.push(FusionAuditEntry {
            family,
            instance: format!("{family}[{label}]"),
            constituents: ops.iter().map(|o| format!("{o:?}")).collect(),
            fused_charges: fused_rendered,
            reference_charges: ref_evs.iter().map(Ev::render).collect(),
            ok: detail.is_none(),
            detail,
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_is_cost_equivalent() {
        let entries = audit_fusion_table();
        let bad: Vec<_> = entries.iter().filter(|e| !e.ok).collect();
        assert!(
            bad.is_empty(),
            "{} non-equivalent instances, first: {:?}",
            bad.len(),
            bad.first()
        );
    }

    #[test]
    fn covers_every_family_and_operator() {
        let entries = audit_fusion_table();
        // 11 bins × 4 families + 8 cmps × 3 families + CStore +
        // LLGetIndex + GetIndexIc + SetIndexIc ± pop.
        let expected = ALL_BINS.len() * 4 + ALL_CMPS.len() * 3 + 1 + 4;
        assert_eq!(entries.len(), expected);
        let families: std::collections::BTreeSet<_> = entries.iter().map(|e| e.family).collect();
        assert_eq!(
            families.into_iter().collect::<Vec<_>>(),
            vec![
                "CStore",
                "CmpJf",
                "GetIndexIc",
                "LCBin",
                "LCBinStore",
                "LCCmpJf",
                "LLBin",
                "LLBinStore",
                "LLCmpJf",
                "LLGetIndex",
                "SetIndexIc",
                "SetIndexPopIc"
            ]
        );
    }

    #[test]
    fn arith_follows_reference_table() {
        let entries = audit_fusion_table();
        let div = entries
            .iter()
            .find(|e| e.instance == "LLBinStore[Div]")
            .unwrap();
        assert_eq!(
            div.fused_charges,
            vec![
                "class:Local",
                "class:Local",
                "class:FloatDiv",
                "arith:div",
                "class:Local"
            ]
        );
        assert_eq!(div.fused_charges, div.reference_charges);
    }
}
