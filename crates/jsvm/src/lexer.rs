//! MiniJS lexer.

use crate::error::JsError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals & names.
    Num(f64),
    Str(String),
    Ident(String),
    // Keywords.
    Var,
    Let,
    Const,
    Function,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    Break,
    Continue,
    True,
    False,
    Null,
    Undefined,
    New,
    Typeof,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    // Operators.
    Assign,        // =
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    PercentAssign, // %=
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    BitAnd,
    BitOr,
    BitXor,
    BitNot,
    Shl,
    Shr,
    UShr,
    Eof,
}

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Tokenize a source string.
pub fn lex(source: &str) -> Result<Vec<Token>, JsError> {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(JsError::Lex {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                let mut is_hex = false;
                if c == '0' && matches!(bytes.get(i + 1), Some('x') | Some('X')) {
                    is_hex = true;
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                } else {
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit()
                            || bytes[i] == '.'
                            || bytes[i] == 'e'
                            || bytes[i] == 'E'
                            || ((bytes[i] == '+' || bytes[i] == '-')
                                && matches!(bytes.get(i.wrapping_sub(1)), Some('e') | Some('E'))))
                    {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let value = if is_hex {
                    u64::from_str_radix(&text[2..], 16)
                        .map(|v| v as f64)
                        .map_err(|_| JsError::Lex {
                            line,
                            message: format!("bad hex literal '{text}'"),
                        })?
                } else {
                    text.parse::<f64>().map_err(|_| JsError::Lex {
                        line,
                        message: format!("bad number literal '{text}'"),
                    })?
                };
                push!(Tok::Num(value));
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(JsError::Lex {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let esc = bytes.get(i + 1).copied().ok_or(JsError::Lex {
                                line,
                                message: "unterminated escape".into(),
                            })?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                '0' => '\0',
                                other => other,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                push!(match word.as_str() {
                    "var" => Tok::Var,
                    "let" => Tok::Let,
                    "const" => Tok::Const,
                    "function" => Tok::Function,
                    "return" => Tok::Return,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "do" => Tok::Do,
                    "for" => Tok::For,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    "undefined" => Tok::Undefined,
                    "new" => Tok::New,
                    "typeof" => Tok::Typeof,
                    _ => Tok::Ident(word),
                });
            }
            _ => {
                // Multi-char operators, longest first.
                let rest: String = bytes[i..bytes.len().min(i + 4)].iter().collect();
                let (tok, len) = if rest.starts_with(">>>") {
                    (Tok::UShr, 3)
                } else if rest.starts_with("===") {
                    (Tok::EqEqEq, 3)
                } else if rest.starts_with("!==") {
                    (Tok::NotEqEq, 3)
                } else if rest.starts_with("==") {
                    (Tok::EqEq, 2)
                } else if rest.starts_with("!=") {
                    (Tok::NotEq, 2)
                } else if rest.starts_with("<=") {
                    (Tok::Le, 2)
                } else if rest.starts_with(">=") {
                    (Tok::Ge, 2)
                } else if rest.starts_with("&&") {
                    (Tok::AndAnd, 2)
                } else if rest.starts_with("||") {
                    (Tok::OrOr, 2)
                } else if rest.starts_with("<<") {
                    (Tok::Shl, 2)
                } else if rest.starts_with(">>") {
                    (Tok::Shr, 2)
                } else if rest.starts_with("++") {
                    (Tok::PlusPlus, 2)
                } else if rest.starts_with("--") {
                    (Tok::MinusMinus, 2)
                } else if rest.starts_with("+=") {
                    (Tok::PlusAssign, 2)
                } else if rest.starts_with("-=") {
                    (Tok::MinusAssign, 2)
                } else if rest.starts_with("*=") {
                    (Tok::StarAssign, 2)
                } else if rest.starts_with("/=") {
                    (Tok::SlashAssign, 2)
                } else if rest.starts_with("%=") {
                    (Tok::PercentAssign, 2)
                } else {
                    let single = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        '.' => Tok::Dot,
                        ':' => Tok::Colon,
                        '?' => Tok::Question,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Not,
                        '&' => Tok::BitAnd,
                        '|' => Tok::BitOr,
                        '^' => Tok::BitXor,
                        '~' => Tok::BitNot,
                        other => {
                            return Err(JsError::Lex {
                                line,
                                message: format!("unexpected character '{other}'"),
                            })
                        }
                    };
                    (single, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers_strings_idents() {
        assert_eq!(
            toks("var x = 3.5e2;"),
            vec![
                Tok::Var,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(350.0),
                Tok::Semi,
                Tok::Eof
            ]
        );
        assert_eq!(toks("0xff")[0], Tok::Num(255.0));
        assert_eq!(toks("'a\\nb'")[0], Tok::Str("a\nb".into()));
        assert_eq!(toks("\"hi\"")[0], Tok::Str("hi".into()));
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a >>> b === c != d <= e && f++"),
            vec![
                Tok::Ident("a".into()),
                Tok::UShr,
                Tok::Ident("b".into()),
                Tok::EqEqEq,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::AndAnd,
                Tok::Ident("f".into()),
                Tok::PlusPlus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let tokens = lex("// hello\n/* multi\nline */ x").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("x".into()));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(JsError::Lex { .. })));
        assert!(matches!(lex("/* oops"), Err(JsError::Lex { .. })));
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            toks("function for while new typeof undefined"),
            vec![
                Tok::Function,
                Tok::For,
                Tok::While,
                Tok::New,
                Tok::Typeof,
                Tok::Undefined,
                Tok::Eof
            ]
        );
    }
}
