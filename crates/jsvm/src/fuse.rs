//! Peephole fusion over MiniJS bytecode, plus inline-cache site
//! assignment.
//!
//! After compilation, each chunk gets a fused **overlay**: a
//! `Vec<Option<FOp>>` the same length as the code, with `Some(fop)` at
//! every pc where a multi-op pattern (or an index op worth an inline
//! cache) begins. The original bytecode is untouched — the interpreter
//! consults the overlay at each pc and either executes the fused form
//! (skipping `width` source ops) or falls back to the plain op.
//!
//! That overlay shape buys two correctness properties for free:
//!
//! * **Jump targets need no analysis.** A jump landing in the middle of
//!   a fused group simply resumes plain execution there — the overlay is
//!   `None` at non-head pcs and the underlying ops are unchanged.
//! * **Guarded fallback is exact.** When a fused handler's fast-path
//!   guard fails (an operand is a heap reference, an inline cache
//!   misses), it falls through to the plain op at the same pc *before
//!   charging anything*, so the virtual-cost trace is identical to the
//!   reference interpreter's.
//!
//! Fusion eligibility mirrors the wasm engine's cost-equivalence
//! invariant (see `wb-wasm-vm/src/fuse.rs` and DESIGN.md): a fused
//! group's fast path must not allocate, must not grow heap bytes, and
//! must not note hotness — so GC safe-points and tier state are
//! provably identical at every group boundary. That is why:
//!
//! * arithmetic fast paths require *number* operands (`Add` on strings
//!   allocates; `to_num` on numbers is pure);
//! * the `SetIndex` fast path covers typed arrays only (a plain-array
//!   store can resize, changing `bytes_since_gc` and hence GC timing);
//! * `GetIndex` caches plain and typed arrays but never strings
//!   (string indexing allocates a fresh one-char string).

use crate::bytecode::{Chunk, Const, Op, Program};

/// Fusable two-operand arithmetic, mirroring the corresponding [`Op`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
}

impl BinKind {
    pub(crate) fn of(op: &Op) -> Option<BinKind> {
        Some(match op {
            Op::Add => BinKind::Add,
            Op::Sub => BinKind::Sub,
            Op::Mul => BinKind::Mul,
            Op::Div => BinKind::Div,
            Op::Mod => BinKind::Mod,
            Op::BitAnd => BinKind::BitAnd,
            Op::BitOr => BinKind::BitOr,
            Op::BitXor => BinKind::BitXor,
            Op::Shl => BinKind::Shl,
            Op::Shr => BinKind::Shr,
            Op::UShr => BinKind::UShr,
            _ => return None,
        })
    }

    /// Cost-model class — must match [`Op::class`] of the source op.
    pub(crate) fn class(self) -> wb_env::OpClass {
        match self {
            BinKind::Add | BinKind::Sub => wb_env::OpClass::FloatAlu,
            BinKind::Mul => wb_env::OpClass::FloatMul,
            BinKind::Div | BinKind::Mod => wb_env::OpClass::FloatDiv,
            BinKind::BitAnd
            | BinKind::BitOr
            | BinKind::BitXor
            | BinKind::Shl
            | BinKind::Shr
            | BinKind::UShr => wb_env::OpClass::IntAlu,
        }
    }

    /// Number-operands fast path. Exactly the reference semantics when
    /// both operands are already `Value::Num` (`to_num` is then the
    /// identity and `Add` cannot concatenate).
    pub(crate) fn apply(self, x: f64, y: f64) -> f64 {
        use crate::vm::{num_to_int32, num_to_uint32};
        match self {
            BinKind::Add => x + y,
            BinKind::Sub => x - y,
            BinKind::Mul => x * y,
            BinKind::Div => x / y,
            BinKind::Mod => x % y,
            BinKind::BitAnd => (num_to_int32(x) & num_to_int32(y)) as f64,
            BinKind::BitOr => (num_to_int32(x) | num_to_int32(y)) as f64,
            BinKind::BitXor => (num_to_int32(x) ^ num_to_int32(y)) as f64,
            BinKind::Shl => num_to_int32(x).wrapping_shl(num_to_int32(y) as u32 & 31) as f64,
            BinKind::Shr => num_to_int32(x).wrapping_shr(num_to_int32(y) as u32 & 31) as f64,
            BinKind::UShr => (num_to_uint32(x) >> (num_to_uint32(y) & 31)) as f64,
        }
    }
}

/// Fusable comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpKind {
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    StrictEq,
    StrictNe,
}

impl CmpKind {
    pub(crate) fn of(op: &Op) -> Option<CmpKind> {
        Some(match op {
            Op::Lt => CmpKind::Lt,
            Op::Gt => CmpKind::Gt,
            Op::Le => CmpKind::Le,
            Op::Ge => CmpKind::Ge,
            Op::EqEq => CmpKind::EqEq,
            Op::NotEq => CmpKind::NotEq,
            Op::StrictEq => CmpKind::StrictEq,
            Op::StrictNe => CmpKind::StrictNe,
            _ => return None,
        })
    }

    /// Number-operands fast path: reference semantics for `Num`/`Num`
    /// (NaN makes relational comparisons false; equality is IEEE `==`).
    pub(crate) fn apply(self, x: f64, y: f64) -> bool {
        match self {
            CmpKind::Lt => x < y,
            CmpKind::Gt => x > y,
            CmpKind::Le => x <= y,
            CmpKind::Ge => x >= y,
            CmpKind::EqEq | CmpKind::StrictEq => x == y,
            CmpKind::NotEq | CmpKind::StrictNe => x != y,
        }
    }
}

/// A fused micro-op (overlay entry). Field names: `a`/`b` are local
/// slots, `c` a numeric constant, `dst` a local slot written,
/// `target` an absolute pc, `ic` an inline-cache site index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FOp {
    /// `LoadLocal a; LoadLocal b; <bin>`
    LLBin { a: u16, b: u16, op: BinKind },
    /// `LoadLocal a; LoadLocal b; <bin>; StoreLocal dst`
    LLBinStore {
        a: u16,
        b: u16,
        op: BinKind,
        dst: u16,
    },
    /// `LoadLocal a; Const c; <bin>`
    LCBin { a: u16, c: f64, op: BinKind },
    /// `LoadLocal a; Const c; <bin>; StoreLocal dst`
    LCBinStore {
        a: u16,
        c: f64,
        op: BinKind,
        dst: u16,
    },
    /// `Const c; StoreLocal dst`
    CStore { c: f64, dst: u16 },
    /// `<cmp>; JumpIfFalse` (operands from the stack)
    CmpJf { op: CmpKind, target: u32 },
    /// `LoadLocal a; LoadLocal b; <cmp>; JumpIfFalse`
    LLCmpJf {
        a: u16,
        b: u16,
        op: CmpKind,
        target: u32,
    },
    /// `LoadLocal a; Const c; <cmp>; JumpIfFalse`
    LCCmpJf {
        a: u16,
        c: f64,
        op: CmpKind,
        target: u32,
    },
    /// `LoadLocal obj; LoadLocal idx; GetIndex`, with an inline cache.
    LLGetIndex { obj: u16, idx: u16, ic: u32 },
    /// A lone `GetIndex` with an inline cache.
    GetIndexIc { ic: u32 },
    /// `SetIndex` (+ `Pop` when `pop`), with an inline cache.
    SetIndexIc { ic: u32, pop: bool },
}

impl FOp {
    /// Source ops this entry covers (pc advance on the fused path).
    pub(crate) fn width(&self) -> usize {
        match self {
            FOp::LLBinStore { .. }
            | FOp::LCBinStore { .. }
            | FOp::LLCmpJf { .. }
            | FOp::LCCmpJf { .. } => 4,
            FOp::LLBin { .. } | FOp::LCBin { .. } | FOp::LLGetIndex { .. } => 3,
            FOp::CStore { .. } | FOp::CmpJf { .. } => 2,
            FOp::SetIndexIc { pop, .. } => 1 + *pop as usize,
            FOp::GetIndexIc { .. } => 1,
        }
    }
}

/// What a monomorphic inline cache remembers about its last receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum IcKind {
    /// Empty cache (initial state, never matches).
    #[default]
    None,
    /// Plain JS array.
    Arr,
    /// `Float64Array`.
    F64,
    /// `Int32Array`.
    I32,
    /// `Uint8Array`.
    U8,
}

impl IcKind {
    /// Whether the receiver counts as a typed array for the cost model
    /// (must agree with the VM's `count_index_op`).
    pub(crate) fn is_typed(self) -> bool {
        matches!(self, IcKind::F64 | IcKind::I32 | IcKind::U8)
    }
}

/// One monomorphic inline-cache entry: valid while the heap generation
/// is unchanged (no GC since caching) and the receiver is `obj`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IcEntry {
    /// Heap generation at cache-fill time.
    pub generation: u64,
    /// Cached receiver reference.
    pub obj: u32,
    /// Cached receiver shape.
    pub kind: IcKind,
}

/// The fused overlay for one chunk.
#[derive(Debug, Default)]
pub(crate) struct FusedChunk {
    /// `Some(fop)` at each pattern head; `None` elsewhere.
    pub ops: Vec<Option<FOp>>,
}

/// Build overlays for every chunk. Returns the per-chunk overlays and
/// the total number of inline-cache sites assigned (indices are global
/// across chunks).
pub(crate) fn build_overlays(program: &Program) -> (Vec<FusedChunk>, u32) {
    let mut next_ic = 0u32;
    let overlays = program
        .chunks
        .iter()
        .map(|c| build_overlay(c, &mut next_ic))
        .collect();
    (overlays, next_ic)
}

fn build_overlay(chunk: &Chunk, next_ic: &mut u32) -> FusedChunk {
    let code = &chunk.code;
    let mut ops: Vec<Option<FOp>> = vec![None; code.len()];
    let mut pc = 0;
    while pc < code.len() {
        match match_at(chunk, pc, next_ic) {
            Some(fop) => {
                let w = fop.width();
                ops[pc] = Some(fop);
                pc += w;
            }
            None => pc += 1,
        }
    }
    FusedChunk { ops }
}

/// Numeric constant at `ci`, if it is one.
fn num_const(chunk: &Chunk, ci: u32) -> Option<f64> {
    match chunk.consts.get(ci as usize) {
        Some(Const::Num(n)) => Some(*n),
        _ => None,
    }
}

fn alloc_ic(next_ic: &mut u32) -> u32 {
    let ic = *next_ic;
    *next_ic += 1;
    ic
}

/// Greedy longest-pattern match at `pc`.
pub(crate) fn match_at(chunk: &Chunk, pc: usize, next_ic: &mut u32) -> Option<FOp> {
    let code = &chunk.code;
    let at = |i: usize| code.get(pc + i);

    if let Some(Op::LoadLocal(a)) = at(0) {
        // LoadLocal; LoadLocal; ...
        if let Some(Op::LoadLocal(b)) = at(1) {
            if let Some(op2) = at(2) {
                if let Some(cmp) = CmpKind::of(op2) {
                    if let Some(Op::JumpIfFalse(d)) = at(3) {
                        let target = (pc as i32 + 3 + d) as u32;
                        return Some(FOp::LLCmpJf {
                            a: *a,
                            b: *b,
                            op: cmp,
                            target,
                        });
                    }
                }
                if let Some(bin) = BinKind::of(op2) {
                    if let Some(Op::StoreLocal(dst)) = at(3) {
                        return Some(FOp::LLBinStore {
                            a: *a,
                            b: *b,
                            op: bin,
                            dst: *dst,
                        });
                    }
                    return Some(FOp::LLBin {
                        a: *a,
                        b: *b,
                        op: bin,
                    });
                }
                if matches!(op2, Op::GetIndex) {
                    return Some(FOp::LLGetIndex {
                        obj: *a,
                        idx: *b,
                        ic: alloc_ic(next_ic),
                    });
                }
            }
        }
        // LoadLocal; Const(num); ...
        if let Some(Op::Const(ci)) = at(1) {
            if let Some(c) = num_const(chunk, *ci) {
                if let Some(op2) = at(2) {
                    if let Some(cmp) = CmpKind::of(op2) {
                        if let Some(Op::JumpIfFalse(d)) = at(3) {
                            let target = (pc as i32 + 3 + d) as u32;
                            return Some(FOp::LCCmpJf {
                                a: *a,
                                c,
                                op: cmp,
                                target,
                            });
                        }
                    }
                    if let Some(bin) = BinKind::of(op2) {
                        if let Some(Op::StoreLocal(dst)) = at(3) {
                            return Some(FOp::LCBinStore {
                                a: *a,
                                c,
                                op: bin,
                                dst: *dst,
                            });
                        }
                        return Some(FOp::LCBin { a: *a, c, op: bin });
                    }
                }
            }
        }
    }
    if let Some(Op::Const(ci)) = at(0) {
        if let Some(c) = num_const(chunk, *ci) {
            if let Some(Op::StoreLocal(dst)) = at(1) {
                return Some(FOp::CStore { c, dst: *dst });
            }
        }
    }
    if let Some(op0) = at(0) {
        if let Some(cmp) = CmpKind::of(op0) {
            if let Some(Op::JumpIfFalse(d)) = at(1) {
                let target = (pc as i32 + 1 + d) as u32;
                return Some(FOp::CmpJf { op: cmp, target });
            }
        }
    }
    if matches!(at(0), Some(Op::GetIndex)) {
        return Some(FOp::GetIndexIc {
            ic: alloc_ic(next_ic),
        });
    }
    if matches!(at(0), Some(Op::SetIndex)) {
        let pop = matches!(at(1), Some(Op::Pop));
        return Some(FOp::SetIndexIc {
            ic: alloc_ic(next_ic),
            pop,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(code: Vec<Op>, consts: Vec<Const>) -> Chunk {
        Chunk {
            code,
            consts,
            ..Default::default()
        }
    }

    #[test]
    fn fuses_counter_increment() {
        // i = i + 1  →  LoadLocal i; Const 1; Add; StoreLocal i
        let c = chunk(
            vec![Op::LoadLocal(0), Op::Const(0), Op::Add, Op::StoreLocal(0)],
            vec![Const::Num(1.0)],
        );
        let mut ic = 0;
        let o = build_overlay(&c, &mut ic);
        assert_eq!(
            o.ops[0],
            Some(FOp::LCBinStore {
                a: 0,
                c: 1.0,
                op: BinKind::Add,
                dst: 0
            })
        );
        assert!(o.ops[1..].iter().all(|x| x.is_none()));
    }

    #[test]
    fn fuses_loop_condition() {
        // while (i < n): LoadLocal i; LoadLocal n; Lt; JumpIfFalse +5
        let c = chunk(
            vec![
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::Lt,
                Op::JumpIfFalse(5),
                Op::Pop,
            ],
            vec![],
        );
        let mut ic = 0;
        let o = build_overlay(&c, &mut ic);
        assert_eq!(
            o.ops[0],
            Some(FOp::LLCmpJf {
                a: 0,
                b: 1,
                op: CmpKind::Lt,
                // JumpIfFalse at pc 3, d=5 → absolute 8.
                target: 8
            })
        );
    }

    #[test]
    fn fuses_index_ops_and_assigns_ic_sites() {
        let c = chunk(
            vec![
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::GetIndex, // site 0 (as LLGetIndex)
                Op::GetIndex, // site 1 (lone)
                Op::SetIndex, // site 2, with Pop
                Op::Pop,
            ],
            vec![],
        );
        let mut ic = 0;
        let o = build_overlay(&c, &mut ic);
        assert_eq!(
            o.ops[0],
            Some(FOp::LLGetIndex {
                obj: 0,
                idx: 1,
                ic: 0
            })
        );
        assert_eq!(o.ops[3], Some(FOp::GetIndexIc { ic: 1 }));
        assert_eq!(o.ops[4], Some(FOp::SetIndexIc { ic: 2, pop: true }));
        assert_eq!(ic, 3);
    }

    #[test]
    fn string_constants_are_not_fused() {
        // `x + "s"` must stay plain: string Add allocates.
        let c = chunk(
            vec![Op::LoadLocal(0), Op::Const(0), Op::Add],
            vec![Const::Str("s".into())],
        );
        let mut ic = 0;
        let o = build_overlay(&c, &mut ic);
        assert!(o.ops.iter().all(|x| x.is_none()));
    }

    #[test]
    fn groups_do_not_overlap() {
        // Two adjacent increments: each 4-wide, heads at 0 and 4.
        let ops = vec![
            Op::LoadLocal(0),
            Op::Const(0),
            Op::Add,
            Op::StoreLocal(0),
            Op::LoadLocal(1),
            Op::Const(0),
            Op::Add,
            Op::StoreLocal(1),
        ];
        let c = chunk(ops, vec![Const::Num(1.0)]);
        let mut ic = 0;
        let o = build_overlay(&c, &mut ic);
        assert!(o.ops[0].is_some());
        assert!(o.ops[1].is_none());
        assert!(o.ops[2].is_none());
        assert!(o.ops[3].is_none());
        assert!(o.ops[4].is_some());
    }

    #[test]
    fn widths_cover_constituents() {
        for (fop, w) in [
            (
                FOp::LLBin {
                    a: 0,
                    b: 1,
                    op: BinKind::Add,
                },
                3,
            ),
            (
                FOp::LLBinStore {
                    a: 0,
                    b: 1,
                    op: BinKind::Add,
                    dst: 0,
                },
                4,
            ),
            (FOp::CStore { c: 0.0, dst: 0 }, 2),
            (
                FOp::CmpJf {
                    op: CmpKind::Lt,
                    target: 0,
                },
                2,
            ),
            (FOp::GetIndexIc { ic: 0 }, 1),
            (FOp::SetIndexIc { ic: 0, pop: true }, 2),
            (FOp::SetIndexIc { ic: 0, pop: false }, 1),
        ] {
            assert_eq!(fop.width(), w, "{fop:?}");
        }
    }
}
