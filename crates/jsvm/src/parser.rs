//! MiniJS recursive-descent parser.

use crate::ast::*;
use crate::error::JsError;
use crate::lexer::{Tok, Token};

/// Parse a token stream into a [`Script`].
pub fn parse(tokens: Vec<Token>) -> Result<Script, JsError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !p.at(&Tok::Eof) {
        body.push(p.statement()?);
    }
    Ok(Script { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        self.tokens
            .get(self.pos + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), JsError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(JsError::Parse {
                line: self.line(),
                message: format!("expected {what}, found {:?}", self.peek()),
            })
        }
    }

    fn ident(&mut self) -> Result<String, JsError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(JsError::Parse {
                line: self.line(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, JsError> {
        match self.peek() {
            Tok::Var | Tok::Let | Tok::Const => {
                self.bump();
                let stmt = self.decl_tail()?;
                self.eat(&Tok::Semi);
                Ok(stmt)
            }
            Tok::Function => {
                self.bump();
                let name = self.ident()?;
                let (params, body) = self.func_rest()?;
                Ok(Stmt::Function { name, params, body })
            }
            Tok::Return => {
                self.bump();
                if self.eat(&Tok::Semi) || self.at(&Tok::RBrace) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expression()?;
                    self.eat(&Tok::Semi);
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                let then = self.block_or_single()?;
                let els = if self.eat(&Tok::Else) {
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Do => {
                self.bump();
                let body = self.block_or_single()?;
                self.expect(&Tok::While, "'while'")?;
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                self.eat(&Tok::Semi);
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::For => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = if self.eat(&Tok::Var) || self.eat(&Tok::Let) || self.eat(&Tok::Const) {
                        self.decl_tail()?
                    } else {
                        Stmt::Expr(self.expression()?)
                    };
                    self.expect(&Tok::Semi, "';'")?;
                    Some(Box::new(s))
                };
                let cond = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::Semi, "';'")?;
                let step = if self.at(&Tok::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Break => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Continue)
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => {
                let e = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// `name = init, name2 = init2` — multi-declarator chains become a
    /// block of single declarations.
    fn decl_tail(&mut self) -> Result<Stmt, JsError> {
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::Decl(name, init));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        if decls.len() == 1 {
            Ok(decls.pop().expect("one decl"))
        } else {
            Ok(Stmt::Block(decls))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, JsError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = Vec::new();
        while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
            body.push(self.statement()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(body)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, JsError> {
        if self.at(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn func_rest(&mut self) -> Result<(Vec<String>, Vec<Stmt>), JsError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let body = self.block()?;
        Ok((params, body))
    }

    // ---- expressions (precedence climbing) -----------------------------

    fn expression(&mut self) -> Result<Expr, JsError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, JsError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Mod),
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        let target = expr_to_target(lhs).ok_or(JsError::Parse {
            line,
            message: "invalid assignment target".into(),
        })?;
        let value = self.assignment()?;
        Ok(Expr::Assign {
            target,
            op,
            value: Box::new(value),
        })
    }

    fn ternary(&mut self) -> Result<Expr, JsError> {
        let cond = self.logic_or()?;
        if self.eat(&Tok::Question) {
            let a = self.assignment()?;
            self.expect(&Tok::Colon, "':'")?;
            let b = self.assignment()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.logic_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.logic_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.bit_xor()?;
        while self.at(&Tok::BitOr) {
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.bit_and()?;
        while self.at(&Tok::BitXor) {
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.equality()?;
        while self.at(&Tok::BitAnd) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::EqEq,
                Tok::NotEq => BinOp::NotEq,
                Tok::EqEqEq => BinOp::StrictEq,
                Tok::NotEqEq => BinOp::StrictNotEq,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn relational(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn shift(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                Tok::UShr => BinOp::UShr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, JsError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::BitNot => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            Tok::Typeof => {
                self.bump();
                Ok(Expr::Unary(UnOp::Typeof, Box::new(self.unary()?)))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let delta = if self.bump() == Tok::PlusPlus {
                    1.0
                } else {
                    -1.0
                };
                let line = self.line();
                let e = self.unary()?;
                let target = expr_to_target(e).ok_or(JsError::Parse {
                    line,
                    message: "invalid ++/-- target".into(),
                })?;
                Ok(Expr::IncDec { target, delta })
            }
            Tok::New => {
                self.bump();
                let line = self.line();
                let name = self.ident()?;
                self.expect(&Tok::LParen, "'('")?;
                let arg = if self.at(&Tok::RParen) {
                    Expr::Num(0.0)
                } else {
                    self.expression()?
                };
                self.expect(&Tok::RParen, "')'")?;
                match name.as_str() {
                    "Float64Array" => Ok(Expr::NewTyped(TypedKind::F64, Box::new(arg))),
                    "Int32Array" => Ok(Expr::NewTyped(TypedKind::I32, Box::new(arg))),
                    "Uint8Array" => Ok(Expr::NewTyped(TypedKind::U8, Box::new(arg))),
                    "Array" => Ok(Expr::NewArray(Box::new(arg))),
                    other => Err(JsError::Parse {
                        line,
                        message: format!("unsupported constructor 'new {other}'"),
                    }),
                }
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, JsError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let args = self.args()?;
                    e = match e {
                        Expr::Member(obj, name) => Expr::MethodCall(obj, name, args),
                        other => Expr::Call(Box::new(other), args),
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expression()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    e = Expr::Member(Box::new(e), name);
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let delta = if self.bump() == Tok::PlusPlus {
                        1.0
                    } else {
                        -1.0
                    };
                    let line = self.line();
                    let target = expr_to_target(e).ok_or(JsError::Parse {
                        line,
                        message: "invalid ++/-- target".into(),
                    })?;
                    e = Expr::IncDec { target, delta };
                }
                _ => return Ok(e),
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, JsError> {
        let mut args = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, JsError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Null => Ok(Expr::Null),
            Tok::Undefined => Ok(Expr::Undefined),
            Tok::Ident(s) => Ok(Expr::Name(s)),
            Tok::LParen => {
                let e = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if !self.at(&Tok::RBracket) {
                    loop {
                        items.push(self.assignment()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                Ok(Expr::Array(items))
            }
            Tok::LBrace => {
                let mut fields = Vec::new();
                if !self.at(&Tok::RBrace) {
                    loop {
                        let key = match self.bump() {
                            Tok::Ident(s) => s,
                            Tok::Str(s) => s,
                            other => {
                                return Err(JsError::Parse {
                                    line,
                                    message: format!("bad object key {other:?}"),
                                })
                            }
                        };
                        self.expect(&Tok::Colon, "':'")?;
                        fields.push((key, self.assignment()?));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(Expr::Object(fields))
            }
            Tok::Function => {
                let (params, body) = self.func_rest()?;
                Ok(Expr::Function { params, body })
            }
            other => Err(JsError::Parse {
                line,
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

fn expr_to_target(e: Expr) -> Option<Target> {
    match e {
        Expr::Name(n) => Some(Target::Name(n)),
        Expr::Index(obj, idx) => Some(Target::Index(obj, idx)),
        Expr::Member(obj, name) => Some(Target::Member(obj, name)),
        _ => None,
    }
}

// Silence "peek2 unused" until lookahead consumers land; remove if unused.
#[allow(dead_code)]
fn _peek2_used(p: &Parser) -> &Tok {
    p.peek2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn p(src: &str) -> Script {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_declarations_and_functions() {
        let s = p("var x = 1; function f(a, b) { return a + b; }");
        assert_eq!(s.body.len(), 2);
        assert!(matches!(&s.body[0], Stmt::Decl(n, Some(Expr::Num(v))) if n == "x" && *v == 1.0));
        assert!(matches!(&s.body[1], Stmt::Function { name, params, .. }
            if name == "f" && params.len() == 2));
    }

    #[test]
    fn precedence_is_right() {
        let s = p("r = 1 + 2 * 3 < 4 << 1 && true;");
        // ((1 + (2*3)) < (4<<1)) && true
        match &s.body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match value.as_ref() {
                Expr::And(lhs, _) => match lhs.as_ref() {
                    Expr::Binary(BinOp::Lt, l, r) => {
                        assert!(matches!(l.as_ref(), Expr::Binary(BinOp::Add, ..)));
                        assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Shl, ..)));
                    }
                    other => panic!("expected Lt, got {other:?}"),
                },
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_inc() {
        let s = p("for (var i = 0; i < 10; i++) { total += i; }");
        match &s.body[0] {
            Stmt::For {
                init: Some(_),
                cond: Some(_),
                step: Some(Expr::IncDec { .. }),
                body,
            } => assert_eq!(body.len(), 1),
            other => panic!("bad for: {other:?}"),
        }
    }

    #[test]
    fn parses_member_chains_and_calls() {
        let s = p("y = Math.sqrt(a[i].v + obj.fn(1, 2));");
        match &s.body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => {
                assert!(matches!(value.as_ref(), Expr::MethodCall(_, name, args)
                    if name == "sqrt" && args.len() == 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_typed_array_constructors() {
        let s = p("var a = new Float64Array(n * n);");
        assert!(matches!(
            &s.body[0],
            Stmt::Decl(_, Some(Expr::NewTyped(TypedKind::F64, _)))
        ));
        assert!(parse(lex("var x = new Foo(1);").unwrap()).is_err());
    }

    #[test]
    fn parses_object_and_array_literals() {
        let s = p("var m = { rows: 2, data: [1, 2, 3] };");
        match &s.body[0] {
            Stmt::Decl(_, Some(Expr::Object(fields))) => {
                assert_eq!(fields.len(), 2);
                assert!(matches!(&fields[1].1, Expr::Array(v) if v.len() == 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_function_expressions() {
        let s = p("var f = function (x) { return x * 2; };");
        assert!(
            matches!(&s.body[0], Stmt::Decl(_, Some(Expr::Function { params, .. }))
            if params.len() == 1)
        );
    }

    #[test]
    fn parses_ternary_and_logical() {
        let s = p("v = a > b ? a : b || c;");
        assert!(matches!(&s.body[0], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Ternary(..))));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(matches!(
            parse(lex("1 = 2;").unwrap()),
            Err(JsError::Parse { .. })
        ));
    }

    #[test]
    fn multi_declarator_becomes_block() {
        let s = p("var a = 1, b = 2;");
        assert!(matches!(&s.body[0], Stmt::Block(v) if v.len() == 2));
    }
}
