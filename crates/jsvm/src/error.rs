//! MiniJS error types.

use std::fmt;

/// Any error raised while lexing, parsing, compiling or running MiniJS.
#[derive(Debug, Clone, PartialEq)]
pub enum JsError {
    /// Lexical error (bad character, unterminated string, …).
    Lex {
        /// 1-based source line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Compile-time error (e.g. `break` outside a loop).
    Compile {
        /// Description.
        message: String,
    },
    /// Runtime `TypeError` (wrong operand/callee kind).
    Type {
        /// Description.
        message: String,
    },
    /// Runtime `ReferenceError` (unknown identifier).
    Reference {
        /// The unresolved name.
        name: String,
    },
    /// Runtime `RangeError` (bad array length, OOB typed-array write, …).
    Range {
        /// Description.
        message: String,
    },
    /// The configured step budget was exhausted (runaway-loop guard).
    StepBudgetExhausted,
    /// Call-stack depth limit exceeded.
    StackOverflow,
    /// The JS heap exceeded the configured resource-limit ceiling
    /// ([`wb_env::ResourceLimits::max_memory_bytes`]). Checked at the GC
    /// safe point *after* collection, so only truly-live data counts —
    /// the deterministic analogue of a tab's OOM kill.
    MemoryLimitExceeded {
        /// Live + external heap bytes after collection.
        requested_bytes: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// Integer division or remainder by zero, reported by compiled code
    /// built with trap checks (`wasm`-parity mode; plain JS numeric
    /// division never traps).
    DivByZero,
    /// Out-of-bounds typed-array access, reported by compiled code built
    /// with trap checks (plain JS reads yield `undefined` / writes are
    /// ignored).
    OutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: u32,
    },
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::Lex { line, message } => write!(f, "SyntaxError (line {line}): {message}"),
            JsError::Parse { line, message } => write!(f, "SyntaxError (line {line}): {message}"),
            JsError::Compile { message } => write!(f, "CompileError: {message}"),
            JsError::Type { message } => write!(f, "TypeError: {message}"),
            JsError::Reference { name } => write!(f, "ReferenceError: {name} is not defined"),
            JsError::Range { message } => write!(f, "RangeError: {message}"),
            JsError::StepBudgetExhausted => write!(f, "step budget exhausted"),
            JsError::StackOverflow => write!(f, "RangeError: maximum call stack size exceeded"),
            JsError::MemoryLimitExceeded {
                requested_bytes,
                limit,
            } => write!(
                f,
                "memory limit exceeded ({requested_bytes} live bytes, limit {limit})"
            ),
            JsError::DivByZero => write!(f, "integer divide by zero"),
            JsError::OutOfBounds { index, len } => {
                write!(f, "out-of-bounds access (index {index}, length {len})")
            }
        }
    }
}

impl std::error::Error for JsError {}
