//! MiniJS abstract syntax tree.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    StrictEq,
    StrictNotEq,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
    Typeof,
}

/// Typed-array constructors the engine supports (`new Float64Array(n)` …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedKind {
    F64,
    I32,
    U8,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `x = …`
    Name(String),
    /// `a[i] = …`
    Index(Box<Expr>, Box<Expr>),
    /// `a.b = …`
    Member(Box<Expr>, String),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Undefined,
    Name(String),
    Array(Vec<Expr>),
    Object(Vec<(String, Expr)>),
    /// `function (a, b) { … }` — an anonymous function expression.
    Function {
        params: Vec<String>,
        body: Vec<Stmt>,
    },
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `f(args…)` on a plain name or any callee expression.
    Call(Box<Expr>, Vec<Expr>),
    /// `obj.method(args…)` — kept distinct so the stdlib can dispatch.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    Index(Box<Expr>, Box<Expr>),
    Member(Box<Expr>, String),
    /// `x = v`, `a[i] += v`, … (op is `None` for plain `=`).
    Assign {
        target: Target,
        op: Option<BinOp>,
        value: Box<Expr>,
    },
    /// `x++` / `x--` (postfix; value semantics of the *old* value are not
    /// relied on by our corpus, so this evaluates to the new value).
    IncDec {
        target: Target,
        delta: f64,
    },
    /// `new Float64Array(n)` and friends.
    NewTyped(TypedKind, Box<Expr>),
    /// `new Array(n)`.
    NewArray(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var`/`let`/`const` with optional initializer.
    Decl(String, Option<Expr>),
    /// Expression statement.
    Expr(Expr),
    /// `return e;` / `return;`
    Return(Option<Expr>),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    /// `do { … } while (cond);`
    DoWhile(Vec<Stmt>, Expr),
    /// C-style `for(init; cond; step) body`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    Break,
    Continue,
    /// `function name(params) { body }`
    Function {
        name: String,
        params: Vec<String>,
        body: Vec<Stmt>,
    },
    /// `{ … }` — flat block (MiniJS is function-scoped like `var`).
    Block(Vec<Stmt>),
}

/// A parsed script: top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Statements in source order.
    pub body: Vec<Stmt>,
}
