//! The MiniJS stack bytecode.

use crate::ast::TypedKind;
use wb_env::OpClass;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// A number.
    Num(f64),
    /// A string (materialized on the heap at load time).
    Str(String),
}

/// One bytecode operation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Mechanical 1:1 names; semantics in the VM.
pub enum Op {
    /// Push chunk constant.
    Const(u32),
    Undef,
    Null,
    True,
    False,
    LoadLocal(u16),
    StoreLocal(u16),
    /// Load a global by name index; `ReferenceError` if absent.
    LoadGlobal(u32),
    StoreGlobal(u32),
    // Arithmetic (JS numbers are doubles; `Add` also concatenates strings).
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Not,
    BitNot,
    TypeofOp,
    // Comparison.
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    StrictEq,
    StrictNe,
    // 32-bit coercing bitwise ops.
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    /// Unconditional relative jump (negative = loop back-edge).
    Jump(i32),
    /// Pop condition; jump when falsy.
    JumpIfFalse(i32),
    /// Peek condition; jump when falsy (for `&&`), else pop.
    JumpIfFalsePeek(i32),
    /// Peek condition; jump when truthy (for `||`), else pop.
    JumpIfTruePeek(i32),
    Pop,
    Dup,
    /// Duplicate the top two stack values (compound index assignment).
    Dup2,
    /// Pop `n` values, push a new array.
    MakeArray(u16),
    /// Pop `n` (key-const-index baked) values, push a new object. The
    /// paired key name indices live in the chunk's `object_shapes`.
    MakeObject {
        shape: u32,
    },
    /// Pop length, push a typed array.
    NewTyped(TypedKind),
    /// Pop length, push a plain array of `undefined`s.
    NewArrayN,
    /// obj, index → value.
    GetIndex,
    /// obj, index, value → value.
    SetIndex,
    /// obj → value (property by name index).
    GetMember(u32),
    /// obj, value → value.
    SetMember(u32),
    /// callee, args… → result.
    Call(u8),
    /// obj, args… → result (dispatches stdlib methods or closure props).
    MethodCall {
        name: u32,
        argc: u8,
    },
    /// Push a closure over chunk `idx`.
    ClosureOp(u32),
    /// Pop return value, exit frame.
    Return,
    /// Exit frame with `undefined`.
    ReturnUndef,
}

impl Op {
    /// Cost-model class of this op.
    pub fn class(&self) -> OpClass {
        use Op::*;
        match self {
            Const(_) | Undef | Null | True | False => OpClass::Const,
            LoadLocal(_) | StoreLocal(_) => OpClass::Local,
            LoadGlobal(_) | StoreGlobal(_) => OpClass::Global,
            Add | Sub | Neg => OpClass::FloatAlu,
            Mul => OpClass::FloatMul,
            Div | Mod => OpClass::FloatDiv,
            Not | BitNot | TypeofOp => OpClass::IntAlu,
            Lt | Gt | Le | Ge | EqEq | NotEq | StrictEq | StrictNe => OpClass::Compare,
            BitAnd | BitOr | BitXor | Shl | Shr | UShr => OpClass::IntAlu,
            Jump(_) | JumpIfFalse(_) | JumpIfFalsePeek(_) | JumpIfTruePeek(_) => OpClass::Branch,
            Pop | Dup | Dup2 => OpClass::Other,
            MakeArray(_) | MakeObject { .. } | NewTyped(_) | NewArrayN | ClosureOp(_) => {
                OpClass::Other
            }
            GetIndex | GetMember(_) => OpClass::Load,
            SetIndex | SetMember(_) => OpClass::Store,
            Call(_) | MethodCall { .. } | Return | ReturnUndef => OpClass::Call,
        }
    }
}

/// A compiled function (or the top-level script, chunk 0).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    /// Debug name.
    pub name: String,
    /// Parameter count.
    pub arity: u16,
    /// Total local slots (params + declared vars).
    pub nlocals: u16,
    /// The code.
    pub code: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Key-name-index lists for `MakeObject` shapes.
    pub object_shapes: Vec<Vec<u32>>,
}

/// A compiled script: chunks plus the interned name table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Chunk 0 is the top level; functions follow.
    pub chunks: Vec<Chunk>,
    /// Interned identifier/property names.
    pub names: Vec<String>,
}

impl Program {
    /// Total bytecode ops across chunks (compile-cost input and the JS
    /// "code size" proxy used in reports).
    pub fn op_count(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }

    /// Resolve a name index back to its string.
    pub fn name(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes_are_sensible() {
        assert_eq!(Op::Add.class(), OpClass::FloatAlu);
        assert_eq!(Op::Mul.class(), OpClass::FloatMul);
        assert_eq!(Op::BitXor.class(), OpClass::IntAlu);
        assert_eq!(Op::GetIndex.class(), OpClass::Load);
        assert_eq!(Op::SetMember(0).class(), OpClass::Store);
        assert_eq!(Op::Jump(-5).class(), OpClass::Branch);
        assert_eq!(Op::Call(2).class(), OpClass::Call);
        assert_eq!(Op::LoadLocal(0).class(), OpClass::Local);
        assert_eq!(Op::LoadGlobal(0).class(), OpClass::Global);
    }

    #[test]
    fn program_op_count_sums_chunks() {
        let mut p = Program::default();
        p.chunks.push(Chunk {
            code: vec![Op::Undef, Op::Return],
            ..Default::default()
        });
        p.chunks.push(Chunk {
            code: vec![Op::True, Op::Pop, Op::ReturnUndef],
            ..Default::default()
        });
        assert_eq!(p.op_count(), 5);
    }
}
