//! # wb-jsvm — the MiniJS engine
//!
//! A small but real JavaScript-engine analogue, covering everything the
//! paper's JS-side measurements depend on (§2.2.1):
//!
//! * **Parsing** — lexer + recursive-descent parser for a JS subset
//!   (functions, closures over globals, C-style `for`/`while`, arrays,
//!   objects, typed arrays, strings, the usual operator zoo). Parse time
//!   is charged per source byte: JS pays a load-time cost WebAssembly
//!   doesn't, which drives the paper's small-input results (Table 3).
//! * **Bytecode compilation** — an explicit stack bytecode ([`Op`]), with
//!   per-op compile cost.
//! * **Interpretation + JIT tier model** — bytecode starts in the
//!   interpreter tier (every op ~20× reference cost); hot functions
//!   (invocations + loop back-edges past the engine threshold) tier up to
//!   "optimized" code near reference cost, paying a compile fee. Typed
//!   array element accesses in optimized code run at a separate (better)
//!   multiplier — the asm.js effect (§2.1.1).
//! * **Mark-sweep garbage collection** — real tracing GC over a heap of
//!   arrays/objects/strings, with pause costs and live-byte accounting.
//!   This is the mechanism behind the paper's flat JS memory curves
//!   (Table 4/6): the live set stays small, and typed-array backing stores
//!   are counted as *external* memory exactly as DevTools does.
//!
//! The engine is deterministic: identical scripts yield identical virtual
//! durations and identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod audit;
mod bytecode;
mod compile;
mod error;
mod fuse;
mod heap;
mod lexer;
mod parser;
mod stdlib;
mod value;
mod vm;

pub use bytecode::{Op, Program};
pub use error::JsError;
pub use heap::HeapStats;
pub use value::JsValue;
pub use vm::{JsReport, JsVm, JsVmConfig};

/// Parse and compile a script without executing it (exposed for tests,
/// code-size metrics and the harness).
pub fn compile_script(source: &str) -> Result<Program, JsError> {
    let tokens = lexer::lex(source)?;
    let script = parser::parse(tokens)?;
    compile::compile(&script)
}
