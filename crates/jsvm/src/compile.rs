//! Bytecode compiler: AST → [`Program`].

use crate::ast::*;
use crate::bytecode::{Chunk, Const, Op, Program};
use crate::error::JsError;
use std::collections::HashMap;

/// Compile a parsed script. Chunk 0 is the top level.
pub fn compile(script: &Script) -> Result<Program, JsError> {
    let mut c = Compiler {
        program: Program::default(),
        name_index: HashMap::new(),
    };
    // Reserve chunk 0 for the top level, then fill it.
    c.program.chunks.push(Chunk {
        name: "<script>".into(),
        ..Default::default()
    });
    let top = c.compile_body("<script>", &[], &script.body, true)?;
    c.program.chunks[0] = top;
    Ok(c.program)
}

struct Compiler {
    program: Program,
    name_index: HashMap<String, u32>,
}

struct LoopCtx {
    break_jumps: Vec<usize>,
    continue_jumps: Vec<usize>,
}

struct FnCtx {
    chunk: Chunk,
    locals: Vec<String>,
    is_top_level: bool,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.name_index.get(name) {
            return i;
        }
        let i = self.program.names.len() as u32;
        self.program.names.push(name.to_string());
        self.name_index.insert(name.to_string(), i);
        i
    }

    /// Compile a function (or the top level) into a fresh chunk.
    fn compile_body(
        &mut self,
        name: &str,
        params: &[String],
        body: &[Stmt],
        is_top_level: bool,
    ) -> Result<Chunk, JsError> {
        let mut locals: Vec<String> = params.to_vec();
        if !is_top_level {
            hoist(body, &mut locals);
        }
        if locals.len() > u16::MAX as usize {
            return Err(JsError::Compile {
                message: format!("too many locals in {name}"),
            });
        }
        let mut ctx = FnCtx {
            chunk: Chunk {
                name: name.into(),
                arity: params.len() as u16,
                nlocals: locals.len() as u16,
                ..Default::default()
            },
            locals,
            is_top_level,
            loops: Vec::new(),
        };
        for stmt in body {
            self.stmt(&mut ctx, stmt)?;
        }
        ctx.chunk.code.push(Op::ReturnUndef);
        Ok(ctx.chunk)
    }

    fn stmt(&mut self, ctx: &mut FnCtx, stmt: &Stmt) -> Result<(), JsError> {
        match stmt {
            Stmt::Decl(name, init) => {
                match init {
                    Some(e) => self.expr(ctx, e)?,
                    None => ctx.chunk.code.push(Op::Undef),
                }
                self.store_name(ctx, name);
            }
            Stmt::Expr(e) => self.expr_stmt(ctx, e)?,
            Stmt::Return(e) => match e {
                Some(e) => {
                    self.expr(ctx, e)?;
                    ctx.chunk.code.push(Op::Return);
                }
                None => ctx.chunk.code.push(Op::ReturnUndef),
            },
            Stmt::If(cond, then, els) => {
                self.expr(ctx, cond)?;
                let jf = self.emit_placeholder(ctx);
                for s in then {
                    self.stmt(ctx, s)?;
                }
                if els.is_empty() {
                    self.patch(ctx, jf, PatchKind::JumpIfFalse);
                } else {
                    let jend = self.emit_placeholder(ctx);
                    self.patch(ctx, jf, PatchKind::JumpIfFalse);
                    for s in els {
                        self.stmt(ctx, s)?;
                    }
                    self.patch(ctx, jend, PatchKind::Jump);
                }
            }
            Stmt::DoWhile(body, cond) => {
                let start = ctx.chunk.code.len();
                ctx.loops.push(LoopCtx {
                    break_jumps: vec![],
                    continue_jumps: vec![],
                });
                for s in body {
                    self.stmt(ctx, s)?;
                }
                let l = ctx.loops.pop().expect("loop ctx");
                let cond_pos = ctx.chunk.code.len();
                for j in l.continue_jumps {
                    self.patch_to(ctx, j, cond_pos, PatchKind::Jump);
                }
                self.expr(ctx, cond)?;
                // Jump back when truthy: JumpIfFalse over a backward Jump.
                let jf = self.emit_placeholder(ctx);
                let here = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::Jump(start as i32 - here as i32));
                self.patch(ctx, jf, PatchKind::JumpIfFalse);
                for j in l.break_jumps {
                    self.patch(ctx, j, PatchKind::Jump);
                }
            }
            Stmt::While(cond, body) => {
                let start = ctx.chunk.code.len();
                self.expr(ctx, cond)?;
                let jf = self.emit_placeholder(ctx);
                ctx.loops.push(LoopCtx {
                    break_jumps: vec![],
                    continue_jumps: vec![],
                });
                for s in body {
                    self.stmt(ctx, s)?;
                }
                let l = ctx.loops.pop().expect("loop ctx");
                // `continue` returns to the condition.
                for j in l.continue_jumps {
                    self.patch_to(ctx, j, start, PatchKind::Jump);
                }
                let here = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::Jump(start as i32 - here as i32));
                self.patch(ctx, jf, PatchKind::JumpIfFalse);
                for j in l.break_jumps {
                    self.patch(ctx, j, PatchKind::Jump);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(ctx, init)?;
                }
                let start = ctx.chunk.code.len();
                let jf = match cond {
                    Some(c) => {
                        self.expr(ctx, c)?;
                        Some(self.emit_placeholder(ctx))
                    }
                    None => None,
                };
                ctx.loops.push(LoopCtx {
                    break_jumps: vec![],
                    continue_jumps: vec![],
                });
                for s in body {
                    self.stmt(ctx, s)?;
                }
                let l = ctx.loops.pop().expect("loop ctx");
                // `continue` jumps to the step expression.
                let step_pos = ctx.chunk.code.len();
                for j in l.continue_jumps {
                    self.patch_to(ctx, j, step_pos, PatchKind::Jump);
                }
                if let Some(step) = step {
                    self.expr_stmt(ctx, step)?;
                }
                let here = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::Jump(start as i32 - here as i32));
                if let Some(jf) = jf {
                    self.patch(ctx, jf, PatchKind::JumpIfFalse);
                }
                for j in l.break_jumps {
                    self.patch(ctx, j, PatchKind::Jump);
                }
            }
            Stmt::Break => {
                let j = self.emit_placeholder(ctx);
                match ctx.loops.last_mut() {
                    Some(l) => l.break_jumps.push(j),
                    None => {
                        return Err(JsError::Compile {
                            message: "break outside loop".into(),
                        })
                    }
                }
            }
            Stmt::Continue => {
                let j = self.emit_placeholder(ctx);
                match ctx.loops.last_mut() {
                    Some(l) => l.continue_jumps.push(j),
                    None => {
                        return Err(JsError::Compile {
                            message: "continue outside loop".into(),
                        })
                    }
                }
            }
            Stmt::Function { name, params, body } => {
                let chunk = self.compile_body(name, params, body, false)?;
                self.program.chunks.push(chunk);
                let idx = (self.program.chunks.len() - 1) as u32;
                ctx.chunk.code.push(Op::ClosureOp(idx));
                self.store_name(ctx, name);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(ctx, s)?;
                }
            }
        }
        Ok(())
    }

    /// Expression in statement position: avoids Dup/Pop churn for
    /// assignments so compiled-code op counts stay honest.
    fn expr_stmt(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), JsError> {
        match e {
            Expr::Assign {
                target,
                op: None,
                value,
            } => {
                match target {
                    Target::Name(n) => {
                        self.expr(ctx, value)?;
                        self.store_name(ctx, n);
                    }
                    Target::Index(obj, idx) => {
                        self.expr(ctx, obj)?;
                        self.expr(ctx, idx)?;
                        self.expr(ctx, value)?;
                        ctx.chunk.code.push(Op::SetIndex);
                        ctx.chunk.code.push(Op::Pop);
                    }
                    Target::Member(obj, name) => {
                        self.expr(ctx, obj)?;
                        self.expr(ctx, value)?;
                        let ni = self.intern(name);
                        ctx.chunk.code.push(Op::SetMember(ni));
                        ctx.chunk.code.push(Op::Pop);
                    }
                }
                Ok(())
            }
            Expr::Assign { .. } | Expr::IncDec { .. } => {
                self.expr(ctx, e)?;
                ctx.chunk.code.push(Op::Pop);
                Ok(())
            }
            _ => {
                self.expr(ctx, e)?;
                ctx.chunk.code.push(Op::Pop);
                Ok(())
            }
        }
    }

    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), JsError> {
        match e {
            Expr::Num(v) => {
                let ci = add_const(&mut ctx.chunk, Const::Num(*v));
                ctx.chunk.code.push(Op::Const(ci));
            }
            Expr::Str(s) => {
                let ci = add_const(&mut ctx.chunk, Const::Str(s.clone()));
                ctx.chunk.code.push(Op::Const(ci));
            }
            Expr::Bool(b) => ctx.chunk.code.push(if *b { Op::True } else { Op::False }),
            Expr::Null => ctx.chunk.code.push(Op::Null),
            Expr::Undefined => ctx.chunk.code.push(Op::Undef),
            Expr::Name(n) => self.load_name(ctx, n),
            Expr::Array(items) => {
                if items.len() > u16::MAX as usize {
                    return Err(JsError::Compile {
                        message: "array literal too long".into(),
                    });
                }
                for item in items {
                    self.expr(ctx, item)?;
                }
                ctx.chunk.code.push(Op::MakeArray(items.len() as u16));
            }
            Expr::Object(fields) => {
                let mut shape = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    shape.push(self.intern(k));
                    self.expr(ctx, v)?;
                }
                ctx.chunk.object_shapes.push(shape);
                let shape_idx = (ctx.chunk.object_shapes.len() - 1) as u32;
                ctx.chunk.code.push(Op::MakeObject { shape: shape_idx });
            }
            Expr::Function { params, body } => {
                let chunk = self.compile_body("<anonymous>", params, body, false)?;
                self.program.chunks.push(chunk);
                let idx = (self.program.chunks.len() - 1) as u32;
                ctx.chunk.code.push(Op::ClosureOp(idx));
            }
            Expr::Unary(op, a) => {
                self.expr(ctx, a)?;
                ctx.chunk.code.push(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                    UnOp::BitNot => Op::BitNot,
                    UnOp::Typeof => Op::TypeofOp,
                });
            }
            Expr::Binary(op, a, b) => {
                self.expr(ctx, a)?;
                self.expr(ctx, b)?;
                ctx.chunk.code.push(bin_op(*op));
            }
            Expr::And(a, b) => {
                self.expr(ctx, a)?;
                let j = self.emit_placeholder(ctx);
                self.expr(ctx, b)?;
                self.patch(ctx, j, PatchKind::JumpIfFalsePeek);
            }
            Expr::Or(a, b) => {
                self.expr(ctx, a)?;
                let j = self.emit_placeholder(ctx);
                self.expr(ctx, b)?;
                self.patch(ctx, j, PatchKind::JumpIfTruePeek);
            }
            Expr::Ternary(c, a, b) => {
                self.expr(ctx, c)?;
                let jf = self.emit_placeholder(ctx);
                self.expr(ctx, a)?;
                let jend = self.emit_placeholder(ctx);
                self.patch(ctx, jf, PatchKind::JumpIfFalse);
                self.expr(ctx, b)?;
                self.patch(ctx, jend, PatchKind::Jump);
            }
            Expr::Call(callee, args) => {
                self.expr(ctx, callee)?;
                for a in args {
                    self.expr(ctx, a)?;
                }
                ctx.chunk.code.push(Op::Call(args.len() as u8));
            }
            Expr::MethodCall(obj, name, args) => {
                self.expr(ctx, obj)?;
                for a in args {
                    self.expr(ctx, a)?;
                }
                let ni = self.intern(name);
                ctx.chunk.code.push(Op::MethodCall {
                    name: ni,
                    argc: args.len() as u8,
                });
            }
            Expr::Index(obj, idx) => {
                self.expr(ctx, obj)?;
                self.expr(ctx, idx)?;
                ctx.chunk.code.push(Op::GetIndex);
            }
            Expr::Member(obj, name) => {
                self.expr(ctx, obj)?;
                let ni = self.intern(name);
                ctx.chunk.code.push(Op::GetMember(ni));
            }
            Expr::Assign { target, op, value } => {
                self.compile_assign(ctx, target, *op, value)?;
            }
            Expr::IncDec { target, delta } => {
                let one = Expr::Num(*delta);
                self.compile_assign(ctx, target, Some(BinOp::Add), &one)?;
            }
            Expr::NewTyped(kind, len) => {
                self.expr(ctx, len)?;
                ctx.chunk.code.push(Op::NewTyped(*kind));
            }
            Expr::NewArray(len) => {
                self.expr(ctx, len)?;
                ctx.chunk.code.push(Op::NewArrayN);
            }
        }
        Ok(())
    }

    /// Assignment in expression position: leaves the assigned value.
    fn compile_assign(
        &mut self,
        ctx: &mut FnCtx,
        target: &Target,
        op: Option<BinOp>,
        value: &Expr,
    ) -> Result<(), JsError> {
        match target {
            Target::Name(n) => {
                if let Some(op) = op {
                    self.load_name(ctx, n);
                    self.expr(ctx, value)?;
                    ctx.chunk.code.push(bin_op(op));
                } else {
                    self.expr(ctx, value)?;
                }
                ctx.chunk.code.push(Op::Dup);
                self.store_name(ctx, n);
            }
            Target::Index(obj, idx) => {
                self.expr(ctx, obj)?;
                self.expr(ctx, idx)?;
                if let Some(op) = op {
                    ctx.chunk.code.push(Op::Dup2);
                    ctx.chunk.code.push(Op::GetIndex);
                    self.expr(ctx, value)?;
                    ctx.chunk.code.push(bin_op(op));
                } else {
                    self.expr(ctx, value)?;
                }
                ctx.chunk.code.push(Op::SetIndex);
            }
            Target::Member(obj, name) => {
                self.expr(ctx, obj)?;
                let ni = self.intern(name);
                if let Some(op) = op {
                    ctx.chunk.code.push(Op::Dup);
                    ctx.chunk.code.push(Op::GetMember(ni));
                    self.expr(ctx, value)?;
                    ctx.chunk.code.push(bin_op(op));
                } else {
                    self.expr(ctx, value)?;
                }
                ctx.chunk.code.push(Op::SetMember(ni));
            }
        }
        Ok(())
    }

    fn load_name(&mut self, ctx: &mut FnCtx, name: &str) {
        if !ctx.is_top_level {
            if let Some(slot) = ctx.locals.iter().position(|l| l == name) {
                ctx.chunk.code.push(Op::LoadLocal(slot as u16));
                return;
            }
        }
        let ni = self.intern(name);
        ctx.chunk.code.push(Op::LoadGlobal(ni));
    }

    fn store_name(&mut self, ctx: &mut FnCtx, name: &str) {
        if !ctx.is_top_level {
            if let Some(slot) = ctx.locals.iter().position(|l| l == name) {
                ctx.chunk.code.push(Op::StoreLocal(slot as u16));
                return;
            }
        }
        let ni = self.intern(name);
        ctx.chunk.code.push(Op::StoreGlobal(ni));
    }

    /// Emit a placeholder jump; patched later.
    fn emit_placeholder(&mut self, ctx: &mut FnCtx) -> usize {
        ctx.chunk.code.push(Op::Jump(0));
        ctx.chunk.code.len() - 1
    }

    /// Patch placeholder at `at` to jump to the current position.
    fn patch(&mut self, ctx: &mut FnCtx, at: usize, kind: PatchKind) {
        let target = ctx.chunk.code.len();
        self.patch_to(ctx, at, target, kind);
    }

    fn patch_to(&mut self, ctx: &mut FnCtx, at: usize, target: usize, kind: PatchKind) {
        let rel = target as i32 - at as i32;
        ctx.chunk.code[at] = match kind {
            PatchKind::Jump => Op::Jump(rel),
            PatchKind::JumpIfFalse => Op::JumpIfFalse(rel),
            PatchKind::JumpIfFalsePeek => Op::JumpIfFalsePeek(rel),
            PatchKind::JumpIfTruePeek => Op::JumpIfTruePeek(rel),
        };
    }
}

enum PatchKind {
    Jump,
    JumpIfFalse,
    JumpIfFalsePeek,
    JumpIfTruePeek,
}

fn bin_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Mod => Op::Mod,
        BinOp::Lt => Op::Lt,
        BinOp::Gt => Op::Gt,
        BinOp::Le => Op::Le,
        BinOp::Ge => Op::Ge,
        BinOp::EqEq => Op::EqEq,
        BinOp::NotEq => Op::NotEq,
        BinOp::StrictEq => Op::StrictEq,
        BinOp::StrictNotEq => Op::StrictNe,
        BinOp::BitAnd => Op::BitAnd,
        BinOp::BitOr => Op::BitOr,
        BinOp::BitXor => Op::BitXor,
        BinOp::Shl => Op::Shl,
        BinOp::Shr => Op::Shr,
        BinOp::UShr => Op::UShr,
    }
}

fn add_const(chunk: &mut Chunk, c: Const) -> u32 {
    if let Some(i) = chunk.consts.iter().position(|x| match (x, &c) {
        (Const::Num(a), Const::Num(b)) => a.to_bits() == b.to_bits(),
        (Const::Str(a), Const::Str(b)) => a == b,
        _ => false,
    }) {
        return i as u32;
    }
    chunk.consts.push(c);
    (chunk.consts.len() - 1) as u32
}

/// Collect declared names in a body (not descending into nested functions).
fn hoist(body: &[Stmt], locals: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Decl(name, _) | Stmt::Function { name, .. } if !locals.contains(name) => {
                locals.push(name.clone());
            }
            Stmt::If(_, a, b) => {
                hoist(a, locals);
                hoist(b, locals);
            }
            Stmt::While(_, b) | Stmt::DoWhile(b, _) => hoist(b, locals),
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    hoist(std::slice::from_ref(init), locals);
                }
                hoist(body, locals);
            }
            Stmt::Block(b) => hoist(b, locals),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn c(src: &str) -> Program {
        compile(&parse(lex(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn top_level_uses_globals_functions_use_locals() {
        let p = c("var g = 1; function f(x) { var y = x + g; return y; }");
        // Top level stores a global.
        assert!(p.chunks[0]
            .code
            .iter()
            .any(|op| matches!(op, Op::StoreGlobal(_))));
        // The function reads param locally and g globally.
        let f = &p.chunks[1];
        assert!(f.code.iter().any(|op| matches!(op, Op::LoadLocal(0))));
        assert!(f.code.iter().any(|op| matches!(op, Op::LoadGlobal(_))));
        assert_eq!(f.arity, 1);
        assert_eq!(f.nlocals, 2); // x, y
    }

    #[test]
    fn loops_have_backward_jumps() {
        let p = c("function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }");
        let f = &p.chunks[1];
        assert!(
            f.code.iter().any(|op| matches!(op, Op::Jump(d) if *d < 0)),
            "expected a back-edge: {:?}",
            f.code
        );
    }

    #[test]
    fn break_continue_require_loop() {
        assert!(matches!(
            compile(&parse(lex("break;").unwrap()).unwrap()),
            Err(JsError::Compile { .. })
        ));
        assert!(matches!(
            compile(&parse(lex("continue;").unwrap()).unwrap()),
            Err(JsError::Compile { .. })
        ));
    }

    #[test]
    fn consts_are_deduplicated() {
        let p = c("function f() { return 5 + 5 + 5; }");
        let f = &p.chunks[1];
        let num_consts = f
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Num(v) if *v == 5.0))
            .count();
        assert_eq!(num_consts, 1);
    }

    #[test]
    fn object_literals_record_shapes() {
        let p = c("var o = { a: 1, b: 2 };");
        let top = &p.chunks[0];
        assert_eq!(top.object_shapes.len(), 1);
        assert_eq!(top.object_shapes[0].len(), 2);
        assert!(top
            .code
            .iter()
            .any(|op| matches!(op, Op::MakeObject { .. })));
    }

    #[test]
    fn statement_assignment_has_no_dup() {
        let p = c("function f(a) { a[0] = 1; }");
        let f = &p.chunks[1];
        assert!(!f.code.iter().any(|op| matches!(op, Op::Dup | Op::Dup2)));
    }
}
