//! The MiniJS virtual machine: bytecode interpreter, JIT tier model, GC
//! scheduling and virtual-time accounting.

use crate::bytecode::{Const, Op, Program};
use crate::error::JsError;
use crate::fuse::{build_overlays, BinKind, FOp, FusedChunk, IcEntry, IcKind};
use crate::heap::{Heap, HeapStats, Obj};
use crate::stdlib::{sha256, DetRng};
use crate::value::{format_number, Builtin, JsValue, Value};
use std::collections::HashMap;
use std::rc::Rc;
use wb_env::{
    ArithCounts, CostTable, JitMode, JsEngineProfile, Nanos, OpCounts, TimeBucket, VirtualClock,
};

/// Configuration of one JS VM.
#[derive(Debug, Clone)]
pub struct JsVmConfig {
    /// Engine parameters (parse/compile/tier/GC costs).
    pub profile: JsEngineProfile,
    /// Whether the optimizing JIT is enabled (`--no-opt` disables it).
    pub jit: JitMode,
    /// Base cost table shared with the Wasm VM.
    pub cost: CostTable,
    /// Nanoseconds per abstract cycle (platform speed).
    pub cycle_time_ns: f64,
    /// Resource ceilings: fuel (retired-op budget →
    /// [`JsError::StepBudgetExhausted`]), heap ceiling
    /// ([`JsError::MemoryLimitExceeded`], checked at the GC safe point)
    /// and frame depth ([`JsError::StackOverflow`]). Limits are checked
    /// on existing virtual-cost events and never add charges, so
    /// default-limit runs are bit-identical to unlimited ones.
    pub limits: wb_env::ResourceLimits,
    /// Execute without the fused-op overlay and inline caches (one
    /// bytecode op per dispatch). Both modes produce bit-identical
    /// measurements; this is a debugging escape hatch for fusion
    /// regressions (`--reference-exec` in the harness).
    pub reference_exec: bool,
}

impl JsVmConfig {
    /// A standalone default suitable for unit tests.
    pub fn reference() -> Self {
        JsVmConfig {
            profile: JsEngineProfile::reference(),
            jit: JitMode::Enabled,
            cost: CostTable::reference(),
            cycle_time_ns: wb_env::calibration::DESKTOP_CYCLE_NS,
            limits: wb_env::ResourceLimits::default(),
            reference_exec: false,
        }
    }

    /// Derive a config from an environment profile.
    pub fn for_env(env: &wb_env::EnvProfile) -> Self {
        JsVmConfig {
            profile: env.js,
            jit: JitMode::Enabled,
            cost: CostTable::reference(),
            cycle_time_ns: env.cycle_time_ns,
            limits: wb_env::ResourceLimits::default(),
            reference_exec: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Interp = 0,
    Jit = 1,
}

#[derive(Debug, Clone, Copy)]
struct TierState {
    tier: Tier,
    hotness: u64,
}

struct Frame {
    chunk: u32,
    pc: usize,
    locals_base: usize,
}

/// Everything measured about a JS execution.
#[derive(Debug, Clone)]
pub struct JsReport {
    /// Total virtual time (parse + compile + exec + GC + JIT).
    pub total: Nanos,
    /// Time attribution breakdown.
    pub clock: VirtualClock,
    /// Retired ops by class, across tiers.
    pub counts: OpCounts,
    /// Ops retired in the interpreter tier only.
    pub interp_counts: OpCounts,
    /// Heap statistics (live/peak/external bytes, GC count).
    pub heap: HeapStats,
    /// Fine-grained arithmetic profile (Table 12).
    pub arith: ArithCounts,
    /// Functions JIT-compiled.
    pub jit_compiles: u32,
    /// Compiled bytecode size (op count) — the JS "code size" proxy.
    pub code_ops: usize,
}

/// The MiniJS virtual machine.
pub struct JsVm {
    config: JsVmConfig,
    program: Rc<Program>,
    name_index: HashMap<String, u32>,
    globals: Vec<Option<Value>>,
    heap: Heap,
    stack: Vec<Value>,
    locals: Vec<Value>,
    frames: Vec<Frame>,
    chunk_state: Vec<TierState>,
    tier_counts: [OpCounts; 2],
    arith: ArithCounts,
    /// Typed-array index accesses retired in JIT code (charged at the
    /// better `jit_typed_array_multiplier`).
    ta_counts: OpCounts,
    clock: VirtualClock,
    steps: u64,
    jit_compiles: u32,
    rng: DetRng,
    /// Per-chunk fused-op overlays (see `fuse.rs`), built at load time.
    fused: Rc<Vec<FusedChunk>>,
    /// Monomorphic inline caches for `GetIndex`/`SetIndex` sites,
    /// indexed globally across chunks.
    ic_state: Vec<IcEntry>,
    ic_hits: u64,
    ic_misses: u64,
    /// `console.log` output.
    pub output: Vec<String>,
}

impl JsVm {
    /// Create a VM with no script loaded.
    pub fn new(config: JsVmConfig) -> Self {
        JsVm {
            config,
            program: Rc::new(Program::default()),
            name_index: HashMap::new(),
            globals: Vec::new(),
            heap: Heap::new(),
            stack: Vec::new(),
            locals: Vec::new(),
            frames: Vec::new(),
            chunk_state: Vec::new(),
            tier_counts: [OpCounts::new(), OpCounts::new()],
            arith: ArithCounts::default(),
            ta_counts: OpCounts::new(),
            clock: VirtualClock::new(),
            steps: 0,
            jit_compiles: 0,
            rng: DetRng::default(),
            fused: Rc::new(Vec::new()),
            ic_state: Vec::new(),
            ic_hits: 0,
            ic_misses: 0,
            output: Vec::new(),
        }
    }

    /// Parse, compile and run a script's top level. Charges parse time per
    /// source byte and bytecode-compile time per op (§2.2.1).
    pub fn load(&mut self, source: &str) -> Result<(), JsError> {
        let program = crate::compile_script(source)?;
        self.charge(
            source.len() as f64 * self.config.profile.parse_cost_per_byte,
            TimeBucket::Load,
        );
        self.charge(
            program.op_count() as f64 * self.config.profile.bytecode_cost_per_op,
            TimeBucket::Compile,
        );
        self.name_index = program
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        self.globals = vec![None; program.names.len()];
        self.chunk_state = vec![
            TierState {
                tier: Tier::Interp,
                hotness: 0,
            };
            program.chunks.len()
        ];
        // Bind host globals wherever the script references them.
        for (name, builtin) in [
            ("Math", Builtin::Math),
            ("console", Builtin::Console),
            ("performance", Builtin::Performance),
            ("crypto", Builtin::Crypto),
            ("String", Builtin::StringCls),
            ("Number", Builtin::NumberCls),
            ("__wb", Builtin::WbHarness),
        ] {
            if let Some(&idx) = self.name_index.get(name) {
                self.globals[idx as usize] = Some(Value::Builtin(builtin));
            }
        }
        for (name, v) in [("NaN", f64::NAN), ("Infinity", f64::INFINITY)] {
            if let Some(&idx) = self.name_index.get(name) {
                self.globals[idx as usize] = Some(Value::Num(v));
            }
        }
        // Build the fused overlay and inline-cache sites. Pure derived
        // data with no virtual-time charge: fusion models no engine
        // work, and the reference and fused modes charge identically.
        let (fused, ic_sites) = build_overlays(&program);
        self.fused = Rc::new(fused);
        self.ic_state = vec![IcEntry::default(); ic_sites as usize];
        self.program = Rc::new(program);
        // Run the top level (chunk 0).
        self.push_frame(0, &[])?;
        self.run(0)?;
        // Top level leaves no value.
        Ok(())
    }

    /// Call a global function by name (the embedder API the harness uses
    /// to drive benchmarks, like invoking an exported JS entry point).
    pub fn call(&mut self, name: &str, args: &[JsValue]) -> Result<JsValue, JsError> {
        let idx = *self
            .name_index
            .get(name)
            .ok_or_else(|| JsError::Reference { name: name.into() })?;
        let callee =
            self.globals[idx as usize].ok_or_else(|| JsError::Reference { name: name.into() })?;
        let Value::Closure(chunk) = callee else {
            return Err(JsError::Type {
                message: format!("{name} is not a function"),
            });
        };
        let arg_values: Vec<Value> = args.iter().map(|a| self.value_in(a)).collect();
        let floor = self.frames.len();
        self.push_frame(chunk, &arg_values)?;
        self.run(floor)?;
        let v = self.stack.pop().unwrap_or(Value::Undefined);
        Ok(self.value_out(v))
    }

    /// Current measurement snapshot.
    pub fn report(&self) -> JsReport {
        let p = &self.config.profile;
        let interp_cycles = self
            .config
            .cost
            .cycles(&self.tier_counts[0], p.interp_multiplier);
        let jit_cycles = self
            .config
            .cost
            .cycles(&self.tier_counts[1], p.jit_multiplier);
        let ta_cycles = self
            .config
            .cost
            .cycles(&self.ta_counts, p.jit_typed_array_multiplier);
        let mut clock = self.clock.clone();
        clock.advance(
            Nanos((interp_cycles + jit_cycles + ta_cycles) * self.config.cycle_time_ns),
            TimeBucket::Exec,
        );
        JsReport {
            total: clock.now(),
            clock,
            counts: self.tier_counts[0]
                .merged(&self.tier_counts[1])
                .merged(&self.ta_counts),
            interp_counts: self.tier_counts[0],
            heap: self.heap.stats(),
            arith: self.arith,
            jit_compiles: self.jit_compiles,
            code_ops: self.program.op_count(),
        }
    }

    /// Read a global as a public value (test/IO helper).
    pub fn global(&mut self, name: &str) -> Option<JsValue> {
        let idx = *self.name_index.get(name)?;
        let v = self.globals.get(idx as usize).copied().flatten()?;
        Some(self.value_out(v))
    }

    // ---- internals ------------------------------------------------------

    fn charge(&mut self, cycles: f64, bucket: TimeBucket) {
        self.clock
            .advance(Nanos(cycles * self.config.cycle_time_ns), bucket);
    }

    fn value_in(&mut self, v: &JsValue) -> Value {
        match v {
            JsValue::Num(n) => Value::Num(*n),
            JsValue::Bool(b) => Value::Bool(*b),
            JsValue::Null => Value::Null,
            JsValue::Undefined => Value::Undefined,
            JsValue::Str(s) => {
                let r = self.alloc(Obj::Str(s.clone()));
                Value::Ref(r)
            }
            JsValue::Array(items) => {
                let vals: Vec<Value> = items.iter().map(|i| self.value_in(i)).collect();
                let r = self.alloc(Obj::Arr(vals));
                Value::Ref(r)
            }
        }
    }

    fn value_out(&self, v: Value) -> JsValue {
        match v {
            Value::Num(n) => JsValue::Num(n),
            Value::Bool(b) => JsValue::Bool(b),
            Value::Null => JsValue::Null,
            Value::Undefined | Value::Closure(_) | Value::Builtin(_) => JsValue::Undefined,
            Value::Ref(r) => match self.heap.get(r) {
                Obj::Str(s) => JsValue::Str(s.clone()),
                Obj::Arr(items) => {
                    JsValue::Array(items.iter().map(|v| self.value_out(*v)).collect())
                }
                Obj::F64(items) => JsValue::Array(items.iter().map(|v| JsValue::Num(*v)).collect()),
                Obj::I32(items) => {
                    JsValue::Array(items.iter().map(|v| JsValue::Num(*v as f64)).collect())
                }
                Obj::U8(items) => {
                    JsValue::Array(items.iter().map(|v| JsValue::Num(*v as f64)).collect())
                }
                Obj::Dict(_) => JsValue::Undefined,
            },
        }
    }

    /// Allocate without collecting: GC only runs at instruction
    /// boundaries (see `run`), when every live value is rooted in the
    /// stack/locals/globals. Collecting here could free an object the
    /// current instruction still holds in Rust locals — or the newly
    /// allocated object itself, before the caller pushes its reference.
    fn alloc(&mut self, obj: Obj) -> u32 {
        self.charge(self.config.profile.alloc_cost, TimeBucket::Exec);
        self.heap.alloc(obj)
    }

    fn maybe_gc(&mut self) -> Result<(), JsError> {
        let limit = self.config.limits.memory_budget();
        let usage = {
            let s = self.heap.stats();
            s.live_bytes + s.external_bytes
        };
        // The heap ceiling forces a collection even below the pressure
        // trigger: only truly-live bytes may kill the run, like a real
        // engine's last-ditch GC before raising OOM. With no ceiling
        // configured (`limit == u64::MAX`, the grid default) this branch
        // never fires and GC scheduling is untouched.
        let over_limit = usage > limit;
        if !self
            .heap
            .should_collect(self.config.profile.gc.trigger_bytes)
            && !over_limit
        {
            return Ok(());
        }
        let roots = self
            .globals
            .iter()
            .filter_map(|g| *g)
            .chain(self.stack.iter().copied())
            .chain(self.locals.iter().copied())
            .collect::<Vec<_>>();
        let live = self.heap.collect(roots.into_iter());
        let gc = self.config.profile.gc;
        self.charge(
            gc.pause_base + gc.pause_per_live_byte * live as f64,
            TimeBucket::Gc,
        );
        let after = {
            let s = self.heap.stats();
            s.live_bytes + s.external_bytes
        };
        if after > limit {
            return Err(JsError::MemoryLimitExceeded {
                requested_bytes: after,
                limit,
            });
        }
        Ok(())
    }

    fn push_frame(&mut self, chunk: u32, args: &[Value]) -> Result<(), JsError> {
        if self.frames.len() >= self.config.limits.max_call_depth {
            return Err(JsError::StackOverflow);
        }
        self.note_hotness(chunk as usize);
        let c = &self.program.chunks[chunk as usize];
        let locals_base = self.locals.len();
        for i in 0..c.nlocals as usize {
            self.locals
                .push(args.get(i).copied().unwrap_or(Value::Undefined));
        }
        self.frames.push(Frame {
            chunk,
            pc: 0,
            locals_base,
        });
        Ok(())
    }

    fn note_hotness(&mut self, chunk: usize) {
        let s = &mut self.chunk_state[chunk];
        s.hotness += 1;
        if s.tier == Tier::Interp
            && self.config.jit == JitMode::Enabled
            && s.hotness >= self.config.profile.jit_threshold
        {
            s.tier = Tier::Jit;
            self.jit_compiles += 1;
            let ops = self.program.chunks[chunk].code.len() as f64;
            let cost = ops * self.config.profile.jit_compile_cost_per_op;
            self.charge(cost, TimeBucket::Compile);
        }
    }

    fn type_error<T>(&self, message: impl Into<String>) -> Result<T, JsError> {
        Err(JsError::Type {
            message: message.into(),
        })
    }

    fn to_num(&self, v: Value) -> f64 {
        match v {
            Value::Num(n) => n,
            Value::Bool(b) => b as u8 as f64,
            Value::Null => 0.0,
            Value::Undefined => f64::NAN,
            Value::Ref(r) => match self.heap.get(r) {
                Obj::Str(s) => {
                    let t = s.trim();
                    if t.is_empty() {
                        0.0
                    } else {
                        t.parse::<f64>().unwrap_or(f64::NAN)
                    }
                }
                _ => f64::NAN,
            },
            Value::Closure(_) | Value::Builtin(_) => f64::NAN,
        }
    }

    fn to_int32(&self, v: Value) -> i32 {
        num_to_int32(self.to_num(v))
    }

    fn to_uint32(&self, v: Value) -> u32 {
        self.to_int32(v) as u32
    }

    fn truthy(&self, v: Value) -> bool {
        match v {
            Value::Ref(r) => match self.heap.get(r) {
                Obj::Str(s) => !s.is_empty(),
                _ => true,
            },
            other => other.truthy_shallow(),
        }
    }

    fn stringify(&self, v: Value) -> String {
        match v {
            Value::Num(n) => format_number(n),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".into(),
            Value::Undefined => "undefined".into(),
            Value::Closure(_) => "function".into(),
            Value::Builtin(_) => "[object Object]".into(),
            Value::Ref(r) => match self.heap.get(r) {
                Obj::Str(s) => s.clone(),
                Obj::Arr(items) => {
                    let parts: Vec<String> = items.iter().map(|v| self.stringify(*v)).collect();
                    parts.join(",")
                }
                Obj::F64(items) => {
                    let parts: Vec<String> = items.iter().map(|v| format_number(*v)).collect();
                    parts.join(",")
                }
                Obj::I32(items) => {
                    let parts: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                    parts.join(",")
                }
                Obj::U8(items) => {
                    let parts: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                    parts.join(",")
                }
                Obj::Dict(_) => "[object Object]".into(),
            },
        }
    }

    fn loose_eq(&self, a: Value, b: Value) -> bool {
        use Value::*;
        match (a, b) {
            (Num(x), Num(y)) => x == y,
            (Bool(x), Bool(y)) => x == y,
            (Null, Null) | (Undefined, Undefined) | (Null, Undefined) | (Undefined, Null) => true,
            (Ref(x), Ref(y)) => {
                if x == y {
                    return true;
                }
                match (self.heap.get(x), self.heap.get(y)) {
                    (Obj::Str(s1), Obj::Str(s2)) => s1 == s2,
                    _ => false,
                }
            }
            (Ref(r), Num(n)) | (Num(n), Ref(r)) => match self.heap.get(r) {
                Obj::Str(_) => self.to_num(Ref(r)) == n,
                _ => false,
            },
            (Bool(x), y) => self.loose_eq(Num(x as u8 as f64), y),
            (x, Bool(y)) => self.loose_eq(x, Num(y as u8 as f64)),
            (Closure(x), Closure(y)) => x == y,
            _ => false,
        }
    }

    fn strict_eq(&self, a: Value, b: Value) -> bool {
        use Value::*;
        match (a, b) {
            (Num(x), Num(y)) => x == y,
            (Bool(x), Bool(y)) => x == y,
            (Null, Null) | (Undefined, Undefined) => true,
            (Ref(x), Ref(y)) => {
                if x == y {
                    return true;
                }
                match (self.heap.get(x), self.heap.get(y)) {
                    (Obj::Str(s1), Obj::Str(s2)) => s1 == s2,
                    _ => false,
                }
            }
            (Closure(x), Closure(y)) => x == y,
            (Builtin(x), Builtin(y)) => x == y,
            _ => false,
        }
    }

    /// Numeric-or-string comparison, returning Ordering-ish via closures.
    fn compare(&self, a: Value, b: Value) -> std::cmp::Ordering {
        if let (Value::Ref(x), Value::Ref(y)) = (a, b) {
            if let (Obj::Str(s1), Obj::Str(s2)) = (self.heap.get(x), self.heap.get(y)) {
                return s1.cmp(s2);
            }
        }
        let x = self.to_num(a);
        let y = self.to_num(b);
        x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Greater) // NaN: comparisons false-ish
    }

    fn run(&mut self, floor: usize) -> Result<(), JsError> {
        let program = Rc::clone(&self.program);
        let fused = Rc::clone(&self.fused);
        let use_fused = !self.config.reference_exec;
        'outer: while self.frames.len() > floor {
            let frame_idx = self.frames.len() - 1;
            let chunk_idx = self.frames[frame_idx].chunk as usize;
            let chunk = &program.chunks[chunk_idx];
            let mut tier = self.chunk_state[chunk_idx].tier;
            let mut pc = self.frames[frame_idx].pc;
            let locals_base = self.frames[frame_idx].locals_base;

            macro_rules! suspend {
                ($next_pc:expr) => {{
                    self.frames[frame_idx].pc = $next_pc;
                    continue 'outer;
                }};
            }

            loop {
                // Instruction boundary: a GC-safe point (all live values
                // are reachable from stack/locals/globals).
                self.maybe_gc()?;
                // Fused dispatch: at a pattern head, try the fused form.
                // Guards run before any charge, so a fallback (`None`)
                // leaves the virtual-cost state untouched and the plain
                // op below replays the reference path exactly.
                if use_fused {
                    if let Some(fop) = fused[chunk_idx].ops[pc] {
                        if let Some(next) = self.exec_fused(fop, pc, tier, locals_base)? {
                            pc = next;
                            continue;
                        }
                    }
                }
                let op = &chunk.code[pc];
                self.steps += 1;
                if self.steps > self.config.limits.fuel_budget() {
                    return Err(JsError::StepBudgetExhausted);
                }
                // Typed-array index ops are counted inside their handler;
                // everything else is charged here.
                if !matches!(op, Op::GetIndex | Op::SetIndex) {
                    self.tier_counts[tier as usize].bump(op.class(), 1);
                }
                match op {
                    Op::Add | Op::Sub => self.arith.add += 1,
                    Op::Mul => self.arith.mul += 1,
                    Op::Div => self.arith.div += 1,
                    Op::Mod => self.arith.rem += 1,
                    Op::Shl | Op::Shr | Op::UShr => self.arith.shift += 1,
                    Op::BitAnd => self.arith.and += 1,
                    Op::BitOr | Op::BitXor => self.arith.or += 1,
                    _ => {}
                }

                match op {
                    Op::Const(ci) => match &chunk.consts[*ci as usize] {
                        Const::Num(v) => self.stack.push(Value::Num(*v)),
                        Const::Str(s) => {
                            let r = self.alloc(Obj::Str(s.clone()));
                            self.stack.push(Value::Ref(r));
                        }
                    },
                    Op::Undef => self.stack.push(Value::Undefined),
                    Op::Null => self.stack.push(Value::Null),
                    Op::True => self.stack.push(Value::Bool(true)),
                    Op::False => self.stack.push(Value::Bool(false)),
                    Op::LoadLocal(i) => {
                        let v = self.locals[locals_base + *i as usize];
                        self.stack.push(v);
                    }
                    Op::StoreLocal(i) => {
                        let v = self.stack.pop().expect("compiled: value");
                        self.locals[locals_base + *i as usize] = v;
                    }
                    Op::LoadGlobal(ni) => match self.globals[*ni as usize] {
                        Some(v) => self.stack.push(v),
                        None => {
                            return Err(JsError::Reference {
                                name: program.name(*ni).to_string(),
                            })
                        }
                    },
                    Op::StoreGlobal(ni) => {
                        let v = self.stack.pop().expect("compiled: value");
                        self.globals[*ni as usize] = Some(v);
                    }
                    Op::Add => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let is_str = |vm: &Self, v: Value| matches!(v, Value::Ref(r) if matches!(vm.heap.get(r), Obj::Str(_)));
                        if is_str(self, a) || is_str(self, b) {
                            let s = format!("{}{}", self.stringify(a), self.stringify(b));
                            let r = self.alloc(Obj::Str(s));
                            self.stack.push(Value::Ref(r));
                        } else {
                            self.stack.push(Value::Num(self.to_num(a) + self.to_num(b)));
                        }
                    }
                    Op::Sub => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(self.to_num(a) - self.to_num(b)));
                    }
                    Op::Mul => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(self.to_num(a) * self.to_num(b)));
                    }
                    Op::Div => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(self.to_num(a) / self.to_num(b)));
                    }
                    Op::Mod => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(self.to_num(a) % self.to_num(b)));
                    }
                    Op::Neg => {
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(-self.to_num(a)));
                    }
                    Op::Not => {
                        let a = self.stack.pop().expect("compiled");
                        let t = self.truthy(a);
                        self.stack.push(Value::Bool(!t));
                    }
                    Op::BitNot => {
                        let a = self.stack.pop().expect("compiled");
                        self.stack.push(Value::Num(!self.to_int32(a) as f64));
                    }
                    Op::TypeofOp => {
                        let a = self.stack.pop().expect("compiled");
                        let s = match a {
                            Value::Ref(r) => match self.heap.get(r) {
                                Obj::Str(_) => "string",
                                _ => "object",
                            },
                            other => other.type_of(),
                        };
                        let r = self.alloc(Obj::Str(s.to_string()));
                        self.stack.push(Value::Ref(r));
                    }
                    Op::Lt | Op::Gt | Op::Le | Op::Ge => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let an = self.to_num(a);
                        let bn = self.to_num(b);
                        let both_str = matches!((a, b), (Value::Ref(_), Value::Ref(_)));
                        let result = if !both_str && (an.is_nan() || bn.is_nan()) {
                            false
                        } else {
                            let ord = self.compare(a, b);
                            match op {
                                Op::Lt => ord == std::cmp::Ordering::Less,
                                Op::Gt => ord == std::cmp::Ordering::Greater,
                                Op::Le => ord != std::cmp::Ordering::Greater,
                                Op::Ge => ord != std::cmp::Ordering::Less,
                                _ => unreachable!(),
                            }
                        };
                        self.stack.push(Value::Bool(result));
                    }
                    Op::EqEq | Op::NotEq => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let eq = self.loose_eq(a, b);
                        self.stack
                            .push(Value::Bool(if matches!(op, Op::EqEq) { eq } else { !eq }));
                    }
                    Op::StrictEq | Op::StrictNe => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let eq = self.strict_eq(a, b);
                        self.stack.push(Value::Bool(if matches!(op, Op::StrictEq) {
                            eq
                        } else {
                            !eq
                        }));
                    }
                    Op::BitAnd | Op::BitOr | Op::BitXor | Op::Shl | Op::Shr => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let x = self.to_int32(a);
                        let y = self.to_int32(b);
                        let r = match op {
                            Op::BitAnd => x & y,
                            Op::BitOr => x | y,
                            Op::BitXor => x ^ y,
                            Op::Shl => x.wrapping_shl(y as u32 & 31),
                            Op::Shr => x.wrapping_shr(y as u32 & 31),
                            _ => unreachable!(),
                        };
                        self.stack.push(Value::Num(r as f64));
                    }
                    Op::UShr => {
                        let b = self.stack.pop().expect("compiled");
                        let a = self.stack.pop().expect("compiled");
                        let x = self.to_uint32(a);
                        let y = self.to_uint32(b) & 31;
                        self.stack.push(Value::Num((x >> y) as f64));
                    }
                    Op::Jump(d) => {
                        if *d < 0 {
                            // Loop back-edge: hotness for OSR-style tier-up.
                            self.note_hotness(chunk_idx);
                            tier = self.chunk_state[chunk_idx].tier;
                        }
                        pc = (pc as i32 + d) as usize;
                        continue;
                    }
                    Op::JumpIfFalse(d) => {
                        let v = self.stack.pop().expect("compiled");
                        if !self.truthy(v) {
                            pc = (pc as i32 + d) as usize;
                            continue;
                        }
                    }
                    Op::JumpIfFalsePeek(d) => {
                        let v = *self.stack.last().expect("compiled");
                        if !self.truthy(v) {
                            pc = (pc as i32 + d) as usize;
                            continue;
                        }
                        self.stack.pop();
                    }
                    Op::JumpIfTruePeek(d) => {
                        let v = *self.stack.last().expect("compiled");
                        if self.truthy(v) {
                            pc = (pc as i32 + d) as usize;
                            continue;
                        }
                        self.stack.pop();
                    }
                    Op::Pop => {
                        self.stack.pop();
                    }
                    Op::Dup => {
                        let v = *self.stack.last().expect("compiled");
                        self.stack.push(v);
                    }
                    Op::Dup2 => {
                        let n = self.stack.len();
                        let a = self.stack[n - 2];
                        let b = self.stack[n - 1];
                        self.stack.push(a);
                        self.stack.push(b);
                    }
                    Op::MakeArray(n) => {
                        let items = self.stack.split_off(self.stack.len() - *n as usize);
                        let r = self.alloc(Obj::Arr(items));
                        self.stack.push(Value::Ref(r));
                    }
                    Op::MakeObject { shape } => {
                        let keys = &chunk.object_shapes[*shape as usize];
                        let values = self.stack.split_off(self.stack.len() - keys.len());
                        let fields: Vec<(u32, Value)> = keys.iter().copied().zip(values).collect();
                        let r = self.alloc(Obj::Dict(fields));
                        self.stack.push(Value::Ref(r));
                    }
                    Op::NewTyped(kind) => {
                        let len = self.stack.pop().expect("compiled");
                        let n = self.to_num(len);
                        if !(0.0..=1e9).contains(&n) || n.fract() != 0.0 {
                            return Err(JsError::Range {
                                message: format!("invalid typed array length {n}"),
                            });
                        }
                        let n = n as usize;
                        let obj = match kind {
                            crate::ast::TypedKind::F64 => Obj::F64(vec![0.0; n]),
                            crate::ast::TypedKind::I32 => Obj::I32(vec![0; n]),
                            crate::ast::TypedKind::U8 => Obj::U8(vec![0; n]),
                        };
                        let r = self.alloc(obj);
                        self.stack.push(Value::Ref(r));
                    }
                    Op::NewArrayN => {
                        let len = self.stack.pop().expect("compiled");
                        let n = self.to_num(len);
                        if !(0.0..=1e9).contains(&n) || n.fract() != 0.0 {
                            return Err(JsError::Range {
                                message: format!("invalid array length {n}"),
                            });
                        }
                        let r = self.alloc(Obj::Arr(vec![Value::Undefined; n as usize]));
                        self.stack.push(Value::Ref(r));
                    }
                    Op::GetIndex => {
                        let idx = self.stack.pop().expect("compiled");
                        let obj = self.stack.pop().expect("compiled");
                        let v = self.get_index(obj, idx, tier)?;
                        self.stack.push(v);
                    }
                    Op::SetIndex => {
                        let val = self.stack.pop().expect("compiled");
                        let idx = self.stack.pop().expect("compiled");
                        let obj = self.stack.pop().expect("compiled");
                        self.set_index(obj, idx, val, tier)?;
                        self.stack.push(val);
                    }
                    Op::GetMember(ni) => {
                        let obj = self.stack.pop().expect("compiled");
                        let v = self.get_member(obj, *ni)?;
                        self.stack.push(v);
                    }
                    Op::SetMember(ni) => {
                        let val = self.stack.pop().expect("compiled");
                        let obj = self.stack.pop().expect("compiled");
                        self.set_member(obj, *ni, val)?;
                        self.stack.push(val);
                    }
                    Op::ClosureOp(idx) => self.stack.push(Value::Closure(*idx)),
                    Op::Call(argc) => {
                        let args = self.stack.split_off(self.stack.len() - *argc as usize);
                        let callee = self.stack.pop().expect("compiled");
                        match callee {
                            Value::Closure(target) => {
                                self.push_frame(target, &args)?;
                                suspend!(pc + 1);
                            }
                            other => {
                                return self.type_error(format!(
                                    "{} is not a function",
                                    self.stringify(other)
                                ))
                            }
                        }
                    }
                    Op::MethodCall { name, argc } => {
                        let args = self.stack.split_off(self.stack.len() - *argc as usize);
                        let obj = self.stack.pop().expect("compiled");
                        match self.method_call(obj, *name, &args)? {
                            MethodOutcome::Value(v) => self.stack.push(v),
                            MethodOutcome::EnterFrame => suspend!(pc + 1),
                        }
                    }
                    Op::Return => {
                        let v = self.stack.pop().expect("compiled");
                        self.locals.truncate(locals_base);
                        self.frames.pop();
                        self.stack.push(v);
                        continue 'outer;
                    }
                    Op::ReturnUndef => {
                        self.locals.truncate(locals_base);
                        self.frames.pop();
                        self.stack.push(Value::Undefined);
                        continue 'outer;
                    }
                }
                pc += 1;
            }
        }
        Ok(())
    }

    /// Execute one fused micro-op if its fast-path guards hold.
    ///
    /// Returns `Ok(Some(next_pc))` when the fused form ran with every
    /// constituent's virtual charge applied, or `Ok(None)` when a guard
    /// failed — in which case *nothing* was charged and the caller must
    /// execute the plain op at `pc`.
    ///
    /// Cost-equivalence invariant (see DESIGN.md): fast paths never
    /// allocate, never grow heap bytes and never note hotness, so GC
    /// safe-points and the tier are identical to the reference
    /// interpreter's at every op boundary. The one permitted divergence
    /// is *where* a `StepBudgetExhausted` error lands inside a group
    /// (the budget is checked once per group, not per constituent);
    /// budget-trapped runs are never measured.
    fn exec_fused(
        &mut self,
        fop: FOp,
        pc: usize,
        tier: Tier,
        locals_base: usize,
    ) -> Result<Option<usize>, JsError> {
        macro_rules! steps {
            ($n:expr) => {
                self.steps += $n;
                if self.steps > self.config.limits.fuel_budget() {
                    return Err(JsError::StepBudgetExhausted);
                }
            };
        }
        macro_rules! bump {
            ($class:ident, $n:expr) => {
                self.tier_counts[tier as usize].bump(wb_env::OpClass::$class, $n)
            };
        }
        let local = |vm: &Self, i: u16| vm.locals[locals_base + i as usize];
        match fop {
            FOp::LLBin { a, b, op } => {
                let (Value::Num(x), Value::Num(y)) = (local(self, a), local(self, b)) else {
                    return Ok(None);
                };
                steps!(3);
                bump!(Local, 2);
                self.bump_bin(tier, op);
                self.stack.push(Value::Num(op.apply(x, y)));
                Ok(Some(pc + 3))
            }
            FOp::LLBinStore { a, b, op, dst } => {
                let (Value::Num(x), Value::Num(y)) = (local(self, a), local(self, b)) else {
                    return Ok(None);
                };
                steps!(4);
                bump!(Local, 2);
                self.bump_bin(tier, op);
                bump!(Local, 1);
                self.locals[locals_base + dst as usize] = Value::Num(op.apply(x, y));
                Ok(Some(pc + 4))
            }
            FOp::LCBin { a, c, op } => {
                let Value::Num(x) = local(self, a) else {
                    return Ok(None);
                };
                steps!(3);
                bump!(Local, 1);
                bump!(Const, 1);
                self.bump_bin(tier, op);
                self.stack.push(Value::Num(op.apply(x, c)));
                Ok(Some(pc + 3))
            }
            FOp::LCBinStore { a, c, op, dst } => {
                let Value::Num(x) = local(self, a) else {
                    return Ok(None);
                };
                steps!(4);
                bump!(Local, 1);
                bump!(Const, 1);
                self.bump_bin(tier, op);
                bump!(Local, 1);
                self.locals[locals_base + dst as usize] = Value::Num(op.apply(x, c));
                Ok(Some(pc + 4))
            }
            FOp::CStore { c, dst } => {
                steps!(2);
                bump!(Const, 1);
                bump!(Local, 1);
                self.locals[locals_base + dst as usize] = Value::Num(c);
                Ok(Some(pc + 2))
            }
            FOp::CmpJf { op, target } => {
                let n = self.stack.len();
                let (Value::Num(x), Value::Num(y)) = (self.stack[n - 2], self.stack[n - 1]) else {
                    return Ok(None);
                };
                steps!(2);
                bump!(Compare, 1);
                bump!(Branch, 1);
                self.stack.truncate(n - 2);
                Ok(Some(if op.apply(x, y) {
                    pc + 2
                } else {
                    target as usize
                }))
            }
            FOp::LLCmpJf { a, b, op, target } => {
                let (Value::Num(x), Value::Num(y)) = (local(self, a), local(self, b)) else {
                    return Ok(None);
                };
                steps!(4);
                bump!(Local, 2);
                bump!(Compare, 1);
                bump!(Branch, 1);
                Ok(Some(if op.apply(x, y) {
                    pc + 4
                } else {
                    target as usize
                }))
            }
            FOp::LCCmpJf { a, c, op, target } => {
                let Value::Num(x) = local(self, a) else {
                    return Ok(None);
                };
                steps!(4);
                bump!(Local, 1);
                bump!(Const, 1);
                bump!(Compare, 1);
                bump!(Branch, 1);
                Ok(Some(if op.apply(x, c) {
                    pc + 4
                } else {
                    target as usize
                }))
            }
            FOp::LLGetIndex { obj, idx, ic } => {
                let Value::Ref(r) = local(self, obj) else {
                    return Ok(None);
                };
                let Value::Num(n) = local(self, idx) else {
                    return Ok(None);
                };
                let Some((v, typed)) = self.ic_probe_load(ic, r, n) else {
                    return Ok(None);
                };
                steps!(3);
                bump!(Local, 2);
                self.count_cached_index(tier, typed, false);
                self.ic_hits += 1;
                self.stack.push(v);
                Ok(Some(pc + 3))
            }
            FOp::GetIndexIc { ic } => {
                let n = self.stack.len();
                let Value::Ref(r) = self.stack[n - 2] else {
                    return Ok(None);
                };
                let Value::Num(num) = self.stack[n - 1] else {
                    return Ok(None);
                };
                let Some((v, typed)) = self.ic_probe_load(ic, r, num) else {
                    return Ok(None);
                };
                steps!(1);
                self.count_cached_index(tier, typed, false);
                self.ic_hits += 1;
                self.stack.truncate(n - 2);
                self.stack.push(v);
                Ok(Some(pc + 1))
            }
            FOp::SetIndexIc { ic, pop } => {
                let n = self.stack.len();
                let (obj, idxv, val) = (self.stack[n - 3], self.stack[n - 2], self.stack[n - 1]);
                let Value::Ref(r) = obj else {
                    return Ok(None);
                };
                let Value::Num(i) = idxv else {
                    return Ok(None);
                };
                let e = self.ic_state[ic as usize];
                // Stores fast-path typed arrays only: a plain-array store
                // can resize, which changes `bytes_since_gc` and thus GC
                // timing — the reference path must handle those.
                if e.obj != r || e.generation != self.heap.generation() || !e.kind.is_typed() {
                    self.ic_refill(ic, r);
                    return Ok(None);
                }
                let w = 1 + pop as usize;
                steps!(w as u64);
                self.count_cached_index(tier, true, true);
                self.ic_hits += 1;
                if i >= 0.0 && i.fract() == 0.0 {
                    let idx = i as usize;
                    let vn = self.to_num(val);
                    let vi = num_to_int32(vn);
                    match self.heap.get_mut(r) {
                        Obj::F64(items) => {
                            if let Some(slot) = items.get_mut(idx) {
                                *slot = vn;
                            }
                        }
                        Obj::I32(items) => {
                            if let Some(slot) = items.get_mut(idx) {
                                *slot = vi;
                            }
                        }
                        Obj::U8(items) => {
                            if let Some(slot) = items.get_mut(idx) {
                                *slot = (vi & 0xff) as u8;
                            }
                        }
                        // Typed-array stores never change heap/external
                        // byte sizes, so the reference's note_resize is a
                        // no-op here and is skipped.
                        _ => {}
                    }
                }
                if pop {
                    // The SetIndex pushes `val`; the fused Pop (class
                    // Other) immediately removes it again.
                    bump!(Other, 1);
                    self.stack.truncate(n - 3);
                } else {
                    self.stack[n - 3] = val;
                    self.stack.truncate(n - 2);
                }
                Ok(Some(pc + w))
            }
        }
    }

    /// Charge class and Table 12 arithmetic for one fused binary op —
    /// the same bumps the plain loop applies for the source op.
    fn bump_bin(&mut self, tier: Tier, op: BinKind) {
        self.tier_counts[tier as usize].bump(op.class(), 1);
        match op {
            BinKind::Add | BinKind::Sub => self.arith.add += 1,
            BinKind::Mul => self.arith.mul += 1,
            BinKind::Div => self.arith.div += 1,
            BinKind::Mod => self.arith.rem += 1,
            BinKind::Shl | BinKind::Shr | BinKind::UShr => self.arith.shift += 1,
            BinKind::BitAnd => self.arith.and += 1,
            BinKind::BitOr | BinKind::BitXor => self.arith.or += 1,
        }
    }

    /// [`Self::count_index_op`] with the receiver's typedness taken from
    /// the inline cache instead of a heap lookup.
    fn count_cached_index(&mut self, tier: Tier, typed: bool, is_store: bool) {
        let class = if is_store {
            wb_env::OpClass::Store
        } else {
            wb_env::OpClass::Load
        };
        if typed && tier == Tier::Jit {
            self.ta_counts.bump(class, 1);
        } else {
            self.tier_counts[tier as usize].bump(class, 1);
        }
    }

    /// Probe the inline cache at site `ic` for a load from `Ref(r)` at
    /// numeric index `n`. On a monomorphic hit, returns the element and
    /// the receiver's typedness — a pure read (cached kinds never
    /// allocate). On a miss, refills the cache and returns `None` so the
    /// caller falls back to the reference path.
    fn ic_probe_load(&mut self, ic: u32, r: u32, n: f64) -> Option<(Value, bool)> {
        let e = self.ic_state[ic as usize];
        if e.obj != r || e.generation != self.heap.generation() || e.kind == IcKind::None {
            self.ic_refill(ic, r);
            return None;
        }
        let v = if n < 0.0 || n.fract() != 0.0 {
            Value::Undefined
        } else {
            let i = n as usize;
            match (e.kind, self.heap.get(r)) {
                (IcKind::Arr, Obj::Arr(items)) => items.get(i).copied().unwrap_or(Value::Undefined),
                (IcKind::F64, Obj::F64(items)) => items
                    .get(i)
                    .map(|x| Value::Num(*x))
                    .unwrap_or(Value::Undefined),
                (IcKind::I32, Obj::I32(items)) => items
                    .get(i)
                    .map(|x| Value::Num(*x as f64))
                    .unwrap_or(Value::Undefined),
                (IcKind::U8, Obj::U8(items)) => items
                    .get(i)
                    .map(|x| Value::Num(*x as f64))
                    .unwrap_or(Value::Undefined),
                // Cache/heap disagreement cannot happen while the
                // generation matches (objects never change variant and
                // slots are only recycled by GC), but fall back safely.
                _ => {
                    self.ic_refill(ic, r);
                    return None;
                }
            }
        };
        Some((v, e.kind.is_typed()))
    }

    /// Refill the cache at site `ic` from receiver `r`, if its kind is
    /// cacheable. Strings and plain objects are not: string indexing
    /// allocates a fresh one-char string, so it must stay on the
    /// reference path.
    fn ic_refill(&mut self, ic: u32, r: u32) {
        self.ic_misses += 1;
        let kind = match self.heap.get(r) {
            Obj::Arr(_) => IcKind::Arr,
            Obj::F64(_) => IcKind::F64,
            Obj::I32(_) => IcKind::I32,
            Obj::U8(_) => IcKind::U8,
            Obj::Str(_) | Obj::Dict(_) => return,
        };
        self.ic_state[ic as usize] = IcEntry {
            generation: self.heap.generation(),
            obj: r,
            kind,
        };
    }

    /// Inline-cache effectiveness counters: `(hits, misses)`. Host-side
    /// diagnostics only — never part of any measurement.
    pub fn ic_stats(&self) -> (u64, u64) {
        (self.ic_hits, self.ic_misses)
    }

    fn count_index_op(&mut self, tier: Tier, obj: Value, is_store: bool) {
        let class = if is_store {
            wb_env::OpClass::Store
        } else {
            wb_env::OpClass::Load
        };
        let typed = matches!(obj, Value::Ref(r)
            if matches!(self.heap.get(r), Obj::F64(_) | Obj::I32(_) | Obj::U8(_)));
        if typed && tier == Tier::Jit {
            self.ta_counts.bump(class, 1);
        } else {
            self.tier_counts[tier as usize].bump(class, 1);
        }
    }

    fn get_index(&mut self, obj: Value, idx: Value, tier: Tier) -> Result<Value, JsError> {
        self.count_index_op(tier, obj, false);
        let i = self.to_num(idx);
        let Value::Ref(r) = obj else {
            return self.type_error("cannot index a non-object");
        };
        if i < 0.0 || i.fract() != 0.0 {
            return Ok(Value::Undefined);
        }
        let i = i as usize;
        Ok(match self.heap.get(r) {
            Obj::Arr(items) => items.get(i).copied().unwrap_or(Value::Undefined),
            Obj::F64(items) => items
                .get(i)
                .map(|v| Value::Num(*v))
                .unwrap_or(Value::Undefined),
            Obj::I32(items) => items
                .get(i)
                .map(|v| Value::Num(*v as f64))
                .unwrap_or(Value::Undefined),
            Obj::U8(items) => items
                .get(i)
                .map(|v| Value::Num(*v as f64))
                .unwrap_or(Value::Undefined),
            Obj::Str(s) => match s.chars().nth(i) {
                Some(c) => {
                    let r = self.alloc(Obj::Str(c.to_string()));
                    Value::Ref(r)
                }
                None => Value::Undefined,
            },
            Obj::Dict(_) => Value::Undefined,
        })
    }

    fn set_index(&mut self, obj: Value, idx: Value, val: Value, tier: Tier) -> Result<(), JsError> {
        self.count_index_op(tier, obj, true);
        let Value::Ref(r) = obj else {
            return self.type_error("cannot index a non-object");
        };
        let i = self.to_num(idx);
        if i < 0.0 || i.fract() != 0.0 {
            return Ok(()); // JS would create a string key; our corpus doesn't
        }
        let i = i as usize;
        let (oh, oe) = {
            let o = self.heap.get(r);
            (o.heap_bytes(), o.external_bytes())
        };
        let vn = self.to_num(val);
        let vi = self.to_int32(val);
        match self.heap.get_mut(r) {
            Obj::Arr(items) => {
                if i >= items.len() {
                    items.resize(i + 1, Value::Undefined);
                }
                items[i] = val;
            }
            Obj::F64(items) => {
                if let Some(slot) = items.get_mut(i) {
                    *slot = vn;
                }
            }
            Obj::I32(items) => {
                if let Some(slot) = items.get_mut(i) {
                    *slot = vi;
                }
            }
            Obj::U8(items) => {
                if let Some(slot) = items.get_mut(i) {
                    *slot = (vi & 0xff) as u8;
                }
            }
            Obj::Str(_) | Obj::Dict(_) => return Ok(()),
        }
        self.heap.note_resize(oh, oe, r);
        Ok(())
    }

    fn get_member(&mut self, obj: Value, ni: u32) -> Result<Value, JsError> {
        let name = self.program.name(ni).to_string();
        match obj {
            Value::Builtin(Builtin::Math) => Ok(match name.as_str() {
                "PI" => Value::Num(std::f64::consts::PI),
                "E" => Value::Num(std::f64::consts::E),
                "LN2" => Value::Num(std::f64::consts::LN_2),
                "LN10" => Value::Num(std::f64::consts::LN_10),
                _ => Value::Undefined,
            }),
            Value::Builtin(Builtin::NumberCls) => Ok(match name.as_str() {
                "MAX_SAFE_INTEGER" => Value::Num(9007199254740991.0),
                "EPSILON" => Value::Num(f64::EPSILON),
                _ => Value::Undefined,
            }),
            Value::Ref(r) => match self.heap.get(r) {
                Obj::Arr(items) => Ok(if name == "length" {
                    Value::Num(items.len() as f64)
                } else {
                    Value::Undefined
                }),
                Obj::F64(items) => Ok(if name == "length" {
                    Value::Num(items.len() as f64)
                } else {
                    Value::Undefined
                }),
                Obj::I32(items) => Ok(if name == "length" {
                    Value::Num(items.len() as f64)
                } else {
                    Value::Undefined
                }),
                Obj::U8(items) => Ok(if name == "length" {
                    Value::Num(items.len() as f64)
                } else {
                    Value::Undefined
                }),
                Obj::Str(s) => Ok(if name == "length" {
                    Value::Num(s.chars().count() as f64)
                } else {
                    Value::Undefined
                }),
                Obj::Dict(fields) => Ok(fields
                    .iter()
                    .find(|(k, _)| *k == ni)
                    .map(|(_, v)| *v)
                    .unwrap_or(Value::Undefined)),
            },
            Value::Undefined | Value::Null => {
                self.type_error(format!("cannot read property '{name}' of {obj:?}"))
            }
            _ => Ok(Value::Undefined),
        }
    }

    fn set_member(&mut self, obj: Value, ni: u32, val: Value) -> Result<(), JsError> {
        let Value::Ref(r) = obj else {
            return self.type_error("cannot set property on a non-object");
        };
        let (oh, oe) = {
            let o = self.heap.get(r);
            (o.heap_bytes(), o.external_bytes())
        };
        match self.heap.get_mut(r) {
            Obj::Dict(fields) => match fields.iter_mut().find(|(k, _)| *k == ni) {
                Some((_, slot)) => *slot = val,
                None => fields.push((ni, val)),
            },
            _ => return Ok(()), // length etc. are read-only in MiniJS
        }
        self.heap.note_resize(oh, oe, r);
        Ok(())
    }

    fn method_call(
        &mut self,
        obj: Value,
        ni: u32,
        args: &[Value],
    ) -> Result<MethodOutcome, JsError> {
        let name = self.program.name(ni).to_string();
        let arg_num =
            |vm: &Self, i: usize| vm.to_num(args.get(i).copied().unwrap_or(Value::Undefined));
        match obj {
            Value::Builtin(Builtin::Math) => {
                let x = arg_num(self, 0);
                let v = match name.as_str() {
                    "floor" => x.floor(),
                    "ceil" => x.ceil(),
                    "round" => (x + 0.5).floor(), // JS rounds half up
                    "trunc" => x.trunc(),
                    "sqrt" => x.sqrt(),
                    "abs" => x.abs(),
                    "exp" => x.exp(),
                    "log" => x.ln(),
                    "sin" => x.sin(),
                    "cos" => x.cos(),
                    "tan" => x.tan(),
                    "atan" => x.atan(),
                    "atan2" => x.atan2(arg_num(self, 1)),
                    "pow" => x.powf(arg_num(self, 1)),
                    "min" => {
                        let mut m = f64::INFINITY;
                        for i in 0..args.len() {
                            m = m.min(arg_num(self, i));
                        }
                        m
                    }
                    "max" => {
                        let mut m = f64::NEG_INFINITY;
                        for i in 0..args.len() {
                            m = m.max(arg_num(self, i));
                        }
                        m
                    }
                    "random" => self.rng.next_f64(),
                    "imul" => {
                        let a = self.to_int32(args.first().copied().unwrap_or(Value::Undefined));
                        let b = self.to_int32(args.get(1).copied().unwrap_or(Value::Undefined));
                        a.wrapping_mul(b) as f64
                    }
                    "hypot" => x.hypot(arg_num(self, 1)),
                    _ => return self.type_error(format!("Math.{name} is not a function")),
                };
                // Math calls execute native code: charge one float op.
                self.tier_counts[1].bump(wb_env::OpClass::FloatDiv, 1);
                Ok(MethodOutcome::Value(Value::Num(v)))
            }
            Value::Builtin(Builtin::WbHarness) => match name.as_str() {
                // Trap-check helpers compiled in by the wasm-parity JS
                // backend: reaching one of these *is* the trap.
                "div0" => Err(JsError::DivByZero),
                "oob" => {
                    let index = arg_num(self, 0) as i64;
                    let len = arg_num(self, 1) as u32;
                    Err(JsError::OutOfBounds { index, len })
                }
                _ => self.type_error(format!("__wb.{name} is not a function")),
            },
            Value::Builtin(Builtin::Console) => {
                let parts: Vec<String> = args.iter().map(|a| self.stringify(*a)).collect();
                self.output.push(parts.join(" "));
                Ok(MethodOutcome::Value(Value::Undefined))
            }
            Value::Builtin(Builtin::Performance) => {
                if name == "now" {
                    let mut clock = self.clock.clone();
                    let p = &self.config.profile;
                    let interp = self
                        .config
                        .cost
                        .cycles(&self.tier_counts[0], p.interp_multiplier);
                    let jit = self
                        .config
                        .cost
                        .cycles(&self.tier_counts[1], p.jit_multiplier);
                    let ta = self
                        .config
                        .cost
                        .cycles(&self.ta_counts, p.jit_typed_array_multiplier);
                    clock.advance(
                        Nanos((interp + jit + ta) * self.config.cycle_time_ns),
                        TimeBucket::Exec,
                    );
                    Ok(MethodOutcome::Value(Value::Num(clock.now().as_millis())))
                } else {
                    self.type_error(format!("performance.{name} is not a function"))
                }
            }
            Value::Builtin(Builtin::Crypto) => {
                if name == "sha256" {
                    let input = args.first().copied().unwrap_or(Value::Undefined);
                    let bytes: Vec<u8> = match input {
                        Value::Ref(r) => match self.heap.get(r) {
                            Obj::U8(b) => b.clone(),
                            Obj::Str(s) => s.as_bytes().to_vec(),
                            _ => return self.type_error("crypto.sha256 expects bytes or string"),
                        },
                        _ => return self.type_error("crypto.sha256 expects bytes or string"),
                    };
                    // Native, hardware-speed hashing: ~0.4 cycles/byte.
                    self.charge(bytes.len() as f64 * 0.4, TimeBucket::Exec);
                    let digest = sha256(&bytes).to_vec();
                    let r = self.alloc(Obj::U8(digest));
                    Ok(MethodOutcome::Value(Value::Ref(r)))
                } else {
                    self.type_error(format!("crypto.{name} is not a function"))
                }
            }
            Value::Builtin(Builtin::StringCls) => {
                if name == "fromCharCode" {
                    let mut s = String::new();
                    for i in 0..args.len() {
                        let code = arg_num(self, i) as u32;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    let r = self.alloc(Obj::Str(s));
                    Ok(MethodOutcome::Value(Value::Ref(r)))
                } else {
                    self.type_error(format!("String.{name} is not a function"))
                }
            }
            Value::Builtin(Builtin::NumberCls) => match name.as_str() {
                "isInteger" => {
                    let x = arg_num(self, 0);
                    Ok(MethodOutcome::Value(Value::Bool(
                        x.is_finite() && x.fract() == 0.0,
                    )))
                }
                // Bit-reinterpretation, modeling the Float64Array/Uint32Array
                // aliasing trick compiled JS uses for type punning — a
                // near-free operation in real engines, hence a builtin.
                "f64hi" => {
                    let bits = arg_num(self, 0).to_bits();
                    Ok(MethodOutcome::Value(Value::Num((bits >> 32) as u32 as f64)))
                }
                "f64lo" => {
                    let bits = arg_num(self, 0).to_bits();
                    Ok(MethodOutcome::Value(Value::Num(bits as u32 as f64)))
                }
                "f64frombits" => {
                    let hi = self.to_uint32(args.first().copied().unwrap_or(Value::Undefined));
                    let lo = self.to_uint32(args.get(1).copied().unwrap_or(Value::Undefined));
                    let bits = ((hi as u64) << 32) | lo as u64;
                    Ok(MethodOutcome::Value(Value::Num(f64::from_bits(bits))))
                }
                "f32bits" => {
                    let v = arg_num(self, 0) as f32;
                    Ok(MethodOutcome::Value(Value::Num(v.to_bits() as i32 as f64)))
                }
                "f32frombits" => {
                    let b = self.to_uint32(args.first().copied().unwrap_or(Value::Undefined));
                    Ok(MethodOutcome::Value(Value::Num(f32::from_bits(b) as f64)))
                }
                _ => self.type_error(format!("Number.{name} is not a function")),
            },
            Value::Ref(r) => {
                let obj_data = self.heap.get(r).clone();
                match obj_data {
                    Obj::Dict(fields) => {
                        // A closure-valued property: a "method" on a plain
                        // object (how the mathjs-style library is built).
                        let f = fields.iter().find(|(k, _)| *k == ni).map(|(_, v)| *v);
                        match f {
                            Some(Value::Closure(chunk)) => {
                                self.push_frame(chunk, args)?;
                                Ok(MethodOutcome::EnterFrame)
                            }
                            _ => self.type_error(format!("{name} is not a function")),
                        }
                    }
                    Obj::Arr(_) => self.array_method(r, &name, args),
                    Obj::Str(s) => self.string_method(&s, &name, args),
                    Obj::F64(_) | Obj::I32(_) | Obj::U8(_) => self.typed_method(r, &name, args),
                }
            }
            other => self.type_error(format!(
                "cannot call method '{name}' on {}",
                self.stringify(other)
            )),
        }
    }

    fn array_method(
        &mut self,
        r: u32,
        name: &str,
        args: &[Value],
    ) -> Result<MethodOutcome, JsError> {
        let (oh, oe) = {
            let o = self.heap.get(r);
            (o.heap_bytes(), o.external_bytes())
        };
        let out = match name {
            "push" => {
                let Obj::Arr(items) = self.heap.get_mut(r) else {
                    unreachable!()
                };
                items.extend_from_slice(args);
                let len = items.len() as f64;
                Value::Num(len)
            }
            "pop" => {
                let Obj::Arr(items) = self.heap.get_mut(r) else {
                    unreachable!()
                };
                items.pop().unwrap_or(Value::Undefined)
            }
            "fill" => {
                let v = args.first().copied().unwrap_or(Value::Undefined);
                let Obj::Arr(items) = self.heap.get_mut(r) else {
                    unreachable!()
                };
                for slot in items.iter_mut() {
                    *slot = v;
                }
                Value::Ref(r)
            }
            "indexOf" => {
                let target = args.first().copied().unwrap_or(Value::Undefined);
                let Obj::Arr(items) = self.heap.get(r) else {
                    unreachable!()
                };
                let items = items.clone();
                let pos = items.iter().position(|v| self.strict_eq(*v, target));
                Value::Num(pos.map(|p| p as f64).unwrap_or(-1.0))
            }
            "join" => {
                let sep = args
                    .first()
                    .map(|s| self.stringify(*s))
                    .unwrap_or_else(|| ",".into());
                let Obj::Arr(items) = self.heap.get(r) else {
                    unreachable!()
                };
                let items = items.clone();
                let parts: Vec<String> = items.iter().map(|v| self.stringify(*v)).collect();
                let joined = parts.join(&sep);
                let rs = self.alloc(Obj::Str(joined));
                Value::Ref(rs)
            }
            _ => return self.type_error(format!("array.{name} is not a function")),
        };
        self.heap.note_resize(oh, oe, r);
        Ok(MethodOutcome::Value(out))
    }

    fn string_method(
        &mut self,
        s: &str,
        name: &str,
        args: &[Value],
    ) -> Result<MethodOutcome, JsError> {
        let arg_num =
            |vm: &Self, i: usize| vm.to_num(args.get(i).copied().unwrap_or(Value::Undefined));
        let out = match name {
            "charCodeAt" => {
                let i = arg_num(self, 0);
                let code = s
                    .chars()
                    .nth(i as usize)
                    .map(|c| c as u32 as f64)
                    .unwrap_or(f64::NAN);
                Value::Num(code)
            }
            "charAt" => {
                let i = arg_num(self, 0) as usize;
                let sub: String = s.chars().skip(i).take(1).collect();
                let r = self.alloc(Obj::Str(sub));
                Value::Ref(r)
            }
            "substring" => {
                let a = arg_num(self, 0).max(0.0) as usize;
                let b = if args.len() > 1 {
                    arg_num(self, 1).max(0.0) as usize
                } else {
                    s.chars().count()
                };
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let sub: String = s.chars().skip(lo).take(hi - lo).collect();
                let r = self.alloc(Obj::Str(sub));
                Value::Ref(r)
            }
            "indexOf" => {
                let needle = match args.first() {
                    Some(v) => self.stringify(*v),
                    None => return Ok(MethodOutcome::Value(Value::Num(-1.0))),
                };
                // Return a char index, not a byte index.
                match s.find(&needle) {
                    Some(byte_pos) => {
                        let char_pos = s[..byte_pos].chars().count();
                        Value::Num(char_pos as f64)
                    }
                    None => Value::Num(-1.0),
                }
            }
            "split" => {
                let sep = match args.first() {
                    Some(v) => self.stringify(*v),
                    None => {
                        let whole = self.alloc(Obj::Str(s.to_string()));
                        let arr = self.alloc(Obj::Arr(vec![Value::Ref(whole)]));
                        return Ok(MethodOutcome::Value(Value::Ref(arr)));
                    }
                };
                let parts: Vec<String> = if sep.is_empty() {
                    s.chars().map(|c| c.to_string()).collect()
                } else {
                    s.split(&sep).map(|p| p.to_string()).collect()
                };
                let refs: Vec<Value> = parts
                    .into_iter()
                    .map(|p| {
                        let r = self.alloc(Obj::Str(p));
                        Value::Ref(r)
                    })
                    .collect();
                let arr = self.alloc(Obj::Arr(refs));
                Value::Ref(arr)
            }
            "toLowerCase" => {
                let r = self.alloc(Obj::Str(s.to_lowercase()));
                Value::Ref(r)
            }
            _ => return self.type_error(format!("string.{name} is not a function")),
        };
        Ok(MethodOutcome::Value(out))
    }

    fn typed_method(
        &mut self,
        r: u32,
        name: &str,
        args: &[Value],
    ) -> Result<MethodOutcome, JsError> {
        match name {
            "fill" => {
                let vn = self.to_num(args.first().copied().unwrap_or(Value::Undefined));
                let vi = self.to_int32(args.first().copied().unwrap_or(Value::Undefined));
                match self.heap.get_mut(r) {
                    Obj::F64(items) => items.iter_mut().for_each(|s| *s = vn),
                    Obj::I32(items) => items.iter_mut().for_each(|s| *s = vi),
                    Obj::U8(items) => items.iter_mut().for_each(|s| *s = (vi & 0xff) as u8),
                    _ => unreachable!(),
                }
                Ok(MethodOutcome::Value(Value::Ref(r)))
            }
            _ => self.type_error(format!("typedarray.{name} is not a function")),
        }
    }
}

enum MethodOutcome {
    Value(Value),
    EnterFrame,
}

/// JS `ToInt32` on an already-numeric value. The single definition both
/// the reference arms (via [`JsVm::to_int32`]) and the fused fast paths
/// use, so their coercion semantics cannot drift.
pub(crate) fn num_to_int32(n: f64) -> i32 {
    if !n.is_finite() {
        return 0;
    }
    let t = n.trunc();
    let m = t.rem_euclid(4294967296.0);
    let m = if m >= 2147483648.0 {
        m - 4294967296.0
    } else {
        m
    };
    m as i32
}

/// JS `ToUint32` on an already-numeric value.
pub(crate) fn num_to_uint32(n: f64) -> u32 {
    num_to_int32(n) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(src: &str) -> JsVm {
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(src).unwrap();
        vm
    }

    #[test]
    fn arithmetic_and_calls() {
        let mut v = vm("function add(a, b) { return a + b * 2; }");
        let r = v
            .call("add", &[JsValue::Num(1.0), JsValue::Num(3.0)])
            .unwrap();
        assert_eq!(r, JsValue::Num(7.0));
    }

    #[test]
    fn loops_and_locals() {
        let mut v =
            vm("function sum(n) { var s = 0; for (var i = 1; i <= n; i++) s += i; return s; }");
        assert_eq!(
            v.call("sum", &[JsValue::Num(100.0)]).unwrap(),
            JsValue::Num(5050.0)
        );
    }

    #[test]
    fn strings_concat_and_methods() {
        let mut v = vm("function greet(name) { return 'hello ' + name + '!'; }\n\
             function code(s) { return s.charCodeAt(1); }");
        assert_eq!(
            v.call("greet", &[JsValue::Str("js".into())]).unwrap(),
            JsValue::Str("hello js!".into())
        );
        assert_eq!(
            v.call("code", &[JsValue::Str("abc".into())]).unwrap(),
            JsValue::Num(98.0)
        );
    }

    #[test]
    fn typed_arrays_work() {
        let mut v = vm("function dot(n) {\n\
               var a = new Float64Array(n); var b = new Float64Array(n);\n\
               for (var i = 0; i < n; i++) { a[i] = i; b[i] = 2; }\n\
               var s = 0;\n\
               for (var i = 0; i < n; i++) s += a[i] * b[i];\n\
               return s;\n\
             }");
        assert_eq!(
            v.call("dot", &[JsValue::Num(10.0)]).unwrap(),
            JsValue::Num(90.0)
        );
        let rep = v.report();
        assert!(rep.heap.external_bytes > 0, "typed arrays are external");
    }

    #[test]
    fn objects_and_methods() {
        let mut v = vm("var lib = { scale: function (x) { return x * 10; } };\n\
             function use(v) { return lib.scale(v) + 1; }");
        assert_eq!(
            v.call("use", &[JsValue::Num(4.0)]).unwrap(),
            JsValue::Num(41.0)
        );
    }

    #[test]
    fn gc_collects_garbage() {
        let mut cfg = JsVmConfig::reference();
        cfg.profile.gc.trigger_bytes = 32 * 1024;
        let mut v = JsVm::new(cfg);
        v.load(
            "function churn(n) {\n\
               var keep = [];\n\
               for (var i = 0; i < n; i++) { var tmp = [i, i, i, i]; if (i % 100 === 0) keep.push(tmp); }\n\
               return keep.length;\n\
             }",
        )
        .unwrap();
        let r = v.call("churn", &[JsValue::Num(5000.0)]).unwrap();
        assert_eq!(r, JsValue::Num(50.0));
        let rep = v.report();
        assert!(rep.heap.gc_count > 0, "GC must have run");
        assert!(rep.clock.gc_time.0 > 0.0, "GC pauses charged");
        // Live memory stays far below total allocations.
        assert!(rep.heap.live_bytes < 200 * 1024);
    }

    #[test]
    fn jit_tiers_up_hot_functions() {
        let src = "function hot(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }";
        let mut v = vm(src);
        v.call("hot", &[JsValue::Num(100000.0)]).unwrap();
        let enabled = v.report();
        assert!(enabled.jit_compiles >= 1);
        assert!(enabled.interp_counts.total() > 0, "warm-up interpreted");
        assert!(enabled.counts.total() > enabled.interp_counts.total());

        let mut cfg = JsVmConfig::reference();
        cfg.jit = JitMode::Disabled;
        let mut v2 = JsVm::new(cfg);
        v2.load(src).unwrap();
        v2.call("hot", &[JsValue::Num(100000.0)]).unwrap();
        let disabled = v2.report();
        assert_eq!(disabled.jit_compiles, 0);
        // The paper's Fig 10: JIT gives a large speedup on hot loops.
        let speedup = disabled.total.0 / enabled.total.0;
        assert!(speedup > 4.0, "JIT speedup was only {speedup:.2}x");
    }

    #[test]
    fn console_and_performance() {
        let mut v = vm("var t0 = performance.now();\n\
             console.log('answer', 42, true);\n\
             var t1 = performance.now();");
        assert_eq!(v.output, vec!["answer 42 true"]);
        let t0 = v.global("t0").unwrap().as_num().expect("number");
        let t1 = v.global("t1").unwrap().as_num().expect("number");
        assert!(t1 >= t0);
    }

    #[test]
    fn crypto_sha256_via_w3c_style_api() {
        let mut v = vm("function h(s) { var d = crypto.sha256(s); return d[0] * 256 + d[1]; }");
        // sha256("abc") begins 0xba 0x78.
        assert_eq!(
            v.call("h", &[JsValue::Str("abc".into())]).unwrap(),
            JsValue::Num((0xbau32 * 256 + 0x78) as f64)
        );
    }

    #[test]
    fn reference_error_for_unknown_globals() {
        let mut v = JsVm::new(JsVmConfig::reference());
        assert!(matches!(
            v.load("missing();"),
            Err(JsError::Reference { .. })
        ));
    }

    #[test]
    fn bitwise_ops_coerce_to_int32() {
        let mut v = vm("function f(a, b) { return ((a | 0) + (b >>> 1)) ^ 3; }");
        assert_eq!(
            v.call("f", &[JsValue::Num(5.9), JsValue::Num(7.0)])
                .unwrap(),
            JsValue::Num(((5 + 3) ^ 3) as f64)
        );
    }

    #[test]
    fn math_methods() {
        let mut v = vm("function f(x) { return Math.sqrt(x) + Math.max(1, 2, 3) + Math.PI; }");
        let r = v
            .call("f", &[JsValue::Num(16.0)])
            .unwrap()
            .as_num()
            .expect("number");
        assert!((r - (4.0 + 3.0 + std::f64::consts::PI)).abs() < 1e-12);
    }

    #[test]
    fn parse_cost_scales_with_source_size() {
        let small = vm("var x = 1;").report();
        let big_src = "var x = 1;".repeat(200);
        let big = {
            let mut v = JsVm::new(JsVmConfig::reference());
            v.load(&big_src).unwrap();
            v.report()
        };
        assert!(big.clock.load_time.0 > small.clock.load_time.0 * 50.0);
    }

    #[test]
    fn recursion_depth_limit() {
        let mut cfg = JsVmConfig::reference();
        cfg.limits.max_call_depth = 64;
        let mut v = JsVm::new(cfg);
        v.load("function f(n) { return f(n + 1); }").unwrap();
        assert_eq!(
            v.call("f", &[JsValue::Num(0.0)]),
            Err(JsError::StackOverflow)
        );
    }

    #[test]
    fn break_and_continue() {
        let mut v = vm("function f(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < n; i++) {\n\
                 if (i % 2 === 0) continue;\n\
                 if (i > 10) break;\n\
                 s += i;\n\
               }\n\
               return s;\n\
             }");
        // odd numbers 1..=9: 1+3+5+7+9 = 25
        assert_eq!(
            v.call("f", &[JsValue::Num(100.0)]).unwrap(),
            JsValue::Num(25.0)
        );
    }

    #[test]
    fn ternary_and_logical_short_circuit() {
        let mut v = vm("var calls = 0;\n\
             function bump() { calls = calls + 1; return true; }\n\
             function f(x) { return x > 0 ? 'pos' : 'neg'; }\n\
             function g() { var r = false && bump(); var s = true || bump(); return calls; }");
        assert_eq!(
            v.call("f", &[JsValue::Num(5.0)]).unwrap(),
            JsValue::Str("pos".into())
        );
        assert_eq!(v.call("g", &[]).unwrap(), JsValue::Num(0.0));
    }
}
