//! The GC heap: a mark-sweep collector over arrays, objects, strings and
//! typed arrays.
//!
//! Measurement model (Table 4/6, §2.2.1): the reported "JS heap" counts
//! live object headers and payloads, while typed-array *backing stores*
//! are accounted as **external** bytes — exactly how V8's DevTools splits
//! them. This is the mechanism that keeps compiled-JS memory flat across
//! input sizes in the paper while the arrays themselves grow.

use crate::value::Value;

/// Heap object payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// A growable JS array of values.
    Arr(Vec<Value>),
    /// A plain object: insertion-ordered (name-index, value) pairs.
    /// MiniJS objects are small; linear lookup is deterministic and cheap.
    Dict(Vec<(u32, Value)>),
    /// A string.
    Str(String),
    /// `Float64Array` (backing store counted as external bytes).
    F64(Vec<f64>),
    /// `Int32Array`.
    I32(Vec<i32>),
    /// `Uint8Array`.
    U8(Vec<u8>),
}

impl Obj {
    /// Bytes charged to the *JS heap* for this object (header + in-heap
    /// payload; typed arrays charge only a header here).
    pub fn heap_bytes(&self) -> u64 {
        const HEADER: u64 = 32;
        match self {
            Obj::Arr(v) => HEADER + 16 * v.len() as u64,
            Obj::Dict(fields) => HEADER + 32 * fields.len() as u64,
            Obj::Str(s) => HEADER + s.len() as u64,
            Obj::F64(_) | Obj::I32(_) | Obj::U8(_) => HEADER,
        }
    }

    /// Bytes charged as *external* (ArrayBuffer backing stores).
    pub fn external_bytes(&self) -> u64 {
        match self {
            Obj::F64(v) => 8 * v.len() as u64,
            Obj::I32(v) => 4 * v.len() as u64,
            Obj::U8(v) => v.len() as u64,
            _ => 0,
        }
    }
}

/// Aggregate heap statistics for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HeapStats {
    /// Live JS-heap bytes right now.
    pub live_bytes: u64,
    /// Peak live JS-heap bytes observed at any collection or snapshot.
    pub peak_live_bytes: u64,
    /// Current external (typed-array backing) bytes.
    pub external_bytes: u64,
    /// Peak external bytes.
    pub peak_external_bytes: u64,
    /// Collections performed.
    pub gc_count: u64,
    /// Objects allocated over the VM lifetime.
    pub alloc_count: u64,
}

/// The mark-sweep heap.
#[derive(Debug, Default)]
pub struct Heap {
    cells: Vec<Option<Obj>>,
    marks: Vec<bool>,
    free: Vec<u32>,
    /// Bytes allocated since the last collection (GC trigger input).
    pub bytes_since_gc: u64,
    /// Bumped on every collection. Inline caches record the generation
    /// they were filled in and treat any bump as invalidation: a sweep
    /// can recycle reference slots, so a cached `(ref, kind)` pair is
    /// only trustworthy while no GC has intervened.
    generation: u64,
    stats: HeapStats,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate an object, returning its reference.
    pub fn alloc(&mut self, obj: Obj) -> u32 {
        let hb = obj.heap_bytes();
        let eb = obj.external_bytes();
        self.stats.live_bytes += hb;
        self.stats.external_bytes += eb;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        self.stats.peak_external_bytes = self
            .stats
            .peak_external_bytes
            .max(self.stats.external_bytes);
        self.stats.alloc_count += 1;
        self.bytes_since_gc += hb + eb;
        match self.free.pop() {
            Some(slot) => {
                self.cells[slot as usize] = Some(obj);
                slot
            }
            None => {
                self.cells.push(Some(obj));
                self.marks.push(false);
                (self.cells.len() - 1) as u32
            }
        }
    }

    /// Borrow an object.
    pub fn get(&self, r: u32) -> &Obj {
        self.cells[r as usize].as_ref().expect("live reference")
    }

    /// Mutably borrow an object. The caller must re-account size changes
    /// via [`Heap::note_resize`] when it grows/shrinks payloads.
    pub fn get_mut(&mut self, r: u32) -> &mut Obj {
        self.cells[r as usize].as_mut().expect("live reference")
    }

    /// Re-account an object's size after in-place mutation. `old_heap`
    /// and `old_external` are the sizes before mutation.
    pub fn note_resize(&mut self, old_heap: u64, old_external: u64, r: u32) {
        let (nh, ne) = {
            let o = self.get(r);
            (o.heap_bytes(), o.external_bytes())
        };
        self.stats.live_bytes = self.stats.live_bytes - old_heap + nh;
        self.stats.external_bytes = self.stats.external_bytes - old_external + ne;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        self.stats.peak_external_bytes = self
            .stats
            .peak_external_bytes
            .max(self.stats.external_bytes);
        if nh + ne > old_heap + old_external {
            self.bytes_since_gc += nh + ne - old_heap - old_external;
        }
    }

    /// Whether allocation pressure warrants a collection.
    pub fn should_collect(&self, trigger_bytes: u64) -> bool {
        self.bytes_since_gc >= trigger_bytes
    }

    /// Mark-sweep collection from the given roots. Returns live JS-heap
    /// bytes after the sweep (the pause-cost input).
    pub fn collect(&mut self, roots: impl Iterator<Item = Value>) -> u64 {
        for m in self.marks.iter_mut() {
            *m = false;
        }
        let mut worklist: Vec<u32> = roots
            .filter_map(|v| match v {
                Value::Ref(r) => Some(r),
                _ => None,
            })
            .collect();
        while let Some(r) = worklist.pop() {
            let idx = r as usize;
            if self.marks[idx] || self.cells[idx].is_none() {
                continue;
            }
            self.marks[idx] = true;
            match self.cells[idx].as_ref().expect("checked above") {
                Obj::Arr(items) => {
                    for v in items {
                        if let Value::Ref(child) = v {
                            worklist.push(*child);
                        }
                    }
                }
                Obj::Dict(fields) => {
                    for (_, v) in fields {
                        if let Value::Ref(child) = v {
                            worklist.push(*child);
                        }
                    }
                }
                _ => {}
            }
        }
        let mut live = 0u64;
        let mut external = 0u64;
        for i in 0..self.cells.len() {
            if self.cells[i].is_some() && !self.marks[i] {
                self.cells[i] = None;
                self.free.push(i as u32);
            } else if let Some(o) = &self.cells[i] {
                live += o.heap_bytes();
                external += o.external_bytes();
            }
        }
        self.stats.live_bytes = live;
        self.stats.external_bytes = external;
        self.stats.gc_count += 1;
        self.bytes_since_gc = 0;
        self.generation += 1;
        live
    }

    /// Current GC generation (see the `generation` field).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_sizes() {
        let mut h = Heap::new();
        let a = h.alloc(Obj::Arr(vec![Value::Num(1.0); 4]));
        assert_eq!(h.stats().live_bytes, 32 + 64);
        let t = h.alloc(Obj::F64(vec![0.0; 100]));
        assert_eq!(h.stats().live_bytes, 32 + 64 + 32);
        assert_eq!(h.stats().external_bytes, 800);
        assert_ne!(a, t);
    }

    #[test]
    fn collect_frees_unreachable_keeps_reachable() {
        let mut h = Heap::new();
        let kept_child = h.alloc(Obj::Str("hi".into()));
        let kept = h.alloc(Obj::Arr(vec![Value::Ref(kept_child)]));
        let _garbage = h.alloc(Obj::Arr(vec![Value::Num(1.0); 100]));
        let live = h.collect([Value::Ref(kept)].into_iter());
        assert_eq!(live, (32 + 2) + (32 + 16));
        assert_eq!(h.stats().gc_count, 1);
        // Reachable survives.
        assert!(matches!(h.get(kept), Obj::Arr(_)));
        assert!(matches!(h.get(kept_child), Obj::Str(_)));
        // Slot reuse after free.
        let reused = h.alloc(Obj::Str("new".into()));
        assert_eq!(reused, 2, "freed slot is recycled");
    }

    #[test]
    fn cycles_are_collected() {
        let mut h = Heap::new();
        let a = h.alloc(Obj::Arr(vec![]));
        let b = h.alloc(Obj::Arr(vec![Value::Ref(a)]));
        if let Obj::Arr(items) = h.get_mut(a) {
            items.push(Value::Ref(b));
        }
        h.note_resize(32, 0, a);
        let live = h.collect(std::iter::empty());
        assert_eq!(live, 0);
    }

    #[test]
    fn note_resize_adjusts_accounting() {
        let mut h = Heap::new();
        let a = h.alloc(Obj::Arr(vec![]));
        let (oh, oe) = (32, 0);
        if let Obj::Arr(items) = h.get_mut(a) {
            items.extend([Value::Num(0.0); 10]);
        }
        h.note_resize(oh, oe, a);
        assert_eq!(h.stats().live_bytes, 32 + 160);
        assert!(h.stats().peak_live_bytes >= 192);
    }

    #[test]
    fn trigger_threshold() {
        let mut h = Heap::new();
        assert!(!h.should_collect(1024));
        h.alloc(Obj::Str("x".repeat(2000)));
        assert!(h.should_collect(1024));
        h.collect(std::iter::empty());
        assert!(!h.should_collect(1024));
    }
}
