//! Runtime values.

/// Built-in host objects reachable from globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `Math` — numeric functions and constants.
    Math,
    /// `console` — `log` output sink.
    Console,
    /// `performance` — `now()` high-resolution virtual timer (§3.3.2).
    Performance,
    /// `crypto` — W3C Web Cryptography API analogue (native SHA-256).
    Crypto,
    /// `String` — `fromCharCode`.
    StringCls,
    /// `Number` — `isInteger`, `MAX_SAFE_INTEGER`.
    NumberCls,
    /// `__wb` — embedder harness object through which compiled code built
    /// with trap checks raises wasm-parity traps (`div0`, `oob`). Not
    /// referenced by normal programs.
    WbHarness,
}

/// An internal MiniJS value. Heap data lives behind [`Value::Ref`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// IEEE double — the only JS number type.
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Reference into the GC heap (arrays, objects, strings, typed arrays).
    Ref(u32),
    /// A function (chunk index); MiniJS closures capture globals only.
    Closure(u32),
    /// A built-in host object.
    Builtin(Builtin),
}

impl Value {
    /// JS truthiness (for `Ref`, any object is truthy; empty-string
    /// falsiness is handled by the VM, which can see the heap).
    pub fn truthy_shallow(&self) -> bool {
        match self {
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Bool(b) => *b,
            Value::Null | Value::Undefined => false,
            Value::Ref(_) | Value::Closure(_) | Value::Builtin(_) => true,
        }
    }

    /// The `typeof` string.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Null => "object",
            Value::Undefined => "undefined",
            Value::Ref(_) => "object", // the VM refines strings to "string"
            Value::Closure(_) => "function",
            Value::Builtin(_) => "object",
        }
    }
}

/// The public value type returned by [`crate::JsVm::call`] — owned data,
/// detached from the VM heap.
#[derive(Debug, Clone, PartialEq)]
pub enum JsValue {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// An array, deep-copied out of the heap.
    Array(Vec<JsValue>),
}

impl JsValue {
    /// The numeric payload, if this is a number (test convenience).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Format a number the way JS `String(n)` does for the common cases:
/// integral values print without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".into()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if n == n.trunc() && n.abs() < 1e21 {
        format!("{}", n as i64)
    } else if n.abs() >= 1e21 {
        // JS switches to exponential notation at 1e21 ("1e+22").
        let s = format!("{n:e}");
        match s.find('e') {
            Some(pos) if !s[pos + 1..].starts_with('-') => {
                format!("{}e+{}", &s[..pos], &s[pos + 1..])
            }
            _ => s,
        }
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Num(0.0).truthy_shallow());
        assert!(!Value::Num(f64::NAN).truthy_shallow());
        assert!(Value::Num(-1.0).truthy_shallow());
        assert!(!Value::Null.truthy_shallow());
        assert!(!Value::Undefined.truthy_shallow());
        assert!(Value::Ref(0).truthy_shallow());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-0.5), "-0.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(1e22), "1e+22");
    }

    #[test]
    fn typeof_strings() {
        assert_eq!(Value::Num(1.0).type_of(), "number");
        assert_eq!(Value::Closure(0).type_of(), "function");
        assert_eq!(Value::Undefined.type_of(), "undefined");
    }
}
