//! Whole-corpus toolchain invariants: every benchmark's compiled module
//! survives encode → decode → validate byte-identically, renders to WAT,
//! and carries the §3.2 memory policy of its toolchain.

use wasmbench::benchmarks::{all_benchmarks, InputSize};
use wasmbench::minic::{Compiler, OptLevel};

#[test]
fn every_benchmark_module_round_trips_and_validates() {
    for b in all_benchmarks() {
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::Oz] {
            let mut c = Compiler::cheerp().opt_level(level).heap_limit(256 << 20);
            for (k, v) in b.defines(InputSize::XS) {
                c = c.define(&k, v);
            }
            let out = c
                .compile_wasm(b.source)
                .unwrap_or_else(|e| panic!("{} {level}: {e}", b.name));
            wasmbench::wasm::validate(&out.module)
                .unwrap_or_else(|e| panic!("{} {level}: {e}", b.name));
            let bytes = wasmbench::wasm::encode_module(&out.module);
            let decoded = wasmbench::wasm::decode_module(&bytes)
                .unwrap_or_else(|e| panic!("{} {level}: {e}", b.name));
            assert_eq!(decoded, out.module, "{} {level}", b.name);
            assert_eq!(
                wasmbench::wasm::encode_module(&decoded),
                bytes,
                "{} {level}: re-encode is byte-identical",
                b.name
            );
            let wat = wasmbench::wasm::print_wat(&out.module);
            assert!(wat.contains("(module"), "{}", b.name);
            assert!(wat.contains("bench_main"), "{}", b.name);
        }
    }
}

#[test]
fn toolchain_memory_policies_hold_across_the_corpus() {
    for b in all_benchmarks() {
        let mut cheerp = Compiler::cheerp().heap_limit(256 << 20);
        let mut emscripten = Compiler::emscripten().heap_limit(256 << 20);
        for (k, v) in b.defines(InputSize::XS) {
            cheerp = cheerp.define(&k, v.clone());
            emscripten = emscripten.define(&k, v);
        }
        let c = cheerp.compile_wasm(b.source).expect("cheerp compiles");
        let e = emscripten
            .compile_wasm(b.source)
            .expect("emscripten compiles");
        let c_min = c.module.memory.expect("has memory").limits.min;
        let e_min = e.module.memory.expect("has memory").limits.min;
        assert!(e_min >= 256, "{}: Emscripten starts at ≥16 MiB", b.name);
        assert!(c_min < e_min, "{}: Cheerp starts smaller", b.name);
        assert!(
            c.module.start.is_some(),
            "{}: Cheerp grows at startup",
            b.name
        );
        assert!(e.module.start.is_none(), "{}: Emscripten does not", b.name);
    }
}

#[test]
fn js_artifacts_parse_in_the_engine_for_all_levels() {
    for b in all_benchmarks().into_iter().take(8) {
        for level in [OptLevel::O0, OptLevel::Oz] {
            let mut c = Compiler::cheerp().opt_level(level);
            for (k, v) in b.defines(InputSize::XS) {
                c = c.define(&k, v);
            }
            let js = c.compile_js(b.source).expect("compiles");
            wasmbench::jsvm::compile_script(&js.source)
                .unwrap_or_else(|e| panic!("{} {level}: {e}", b.name));
        }
    }
}
