//! Cross-crate integration tests asserting the paper's headline *shapes*
//! hold on a representative slice of the corpus. The full-grid numbers
//! live in EXPERIMENTS.md; these tests keep the shapes from regressing.

use wasmbench::benchmarks::{suite, InputSize};
use wasmbench::core::stats::geomean;
use wasmbench::core::{run_compiled_js, run_native, run_wasm, JsSpec, WasmSpec};
use wasmbench::env::{Browser, Environment, JitMode, Platform, TierPolicy, Toolchain};
use wasmbench::minic::OptLevel;

fn reps() -> Vec<wasmbench::benchmarks::Benchmark> {
    [
        "gemm",
        "jacobi-2d",
        "durbin",
        "floyd-warshall",
        "AES",
        "DFADD",
        "SHA",
    ]
    .iter()
    .map(|n| suite::find(n).expect("representative exists"))
    .collect()
}

fn wasm_spec(b: &wasmbench::benchmarks::Benchmark, size: InputSize) -> WasmSpec<'_> {
    let mut s = WasmSpec::new(b.source);
    s.defines = b.defines(size);
    s
}

fn js_spec(b: &wasmbench::benchmarks::Benchmark, size: InputSize) -> JsSpec<'_> {
    let mut s = JsSpec::new(b.source);
    s.defines = b.defines(size);
    s
}

/// §4.3 / Table 3: on Chrome, Wasm dominates at XS; JS catches up at
/// larger inputs (the gap shrinks monotonically in the geomean).
#[test]
fn wasm_advantage_shrinks_with_input_size_on_chrome() {
    let mut gmeans = Vec::new();
    for size in [InputSize::XS, InputSize::M, InputSize::XL] {
        let mut speedups = Vec::new();
        for b in reps() {
            let w = run_wasm(&wasm_spec(&b, size)).expect("wasm");
            let j = run_compiled_js(&js_spec(&b, size)).expect("js");
            assert_eq!(w.output, j.output, "{} {size}", b.name);
            speedups.push(j.time.0 / w.time.0);
        }
        gmeans.push(geomean(&speedups).expect("positive"));
    }
    assert!(gmeans[0] > gmeans[1], "XS {} > M {}", gmeans[0], gmeans[1]);
    assert!(gmeans[1] > gmeans[2], "M {} > XL {}", gmeans[1], gmeans[2]);
    assert!(gmeans[0] > 4.0, "Wasm dominates at XS: {}", gmeans[0]);
}

/// §4.3.2 / Table 5: on Firefox the sign flips — JS wins at XS (slow Wasm
/// instantiation), Wasm wins at XL (best optimizing tier on desktop).
#[test]
fn firefox_inverts_the_small_input_result() {
    let firefox = Environment::new(Browser::Firefox, Platform::Desktop);
    let mut xs_speedups = Vec::new();
    let mut xl_speedups = Vec::new();
    for b in reps() {
        for (size, out) in [
            (InputSize::XS, &mut xs_speedups),
            (InputSize::XL, &mut xl_speedups),
        ] {
            let mut ws = wasm_spec(&b, size);
            ws.env = firefox;
            let mut js = js_spec(&b, size);
            js.env = firefox;
            let w = run_wasm(&ws).expect("wasm");
            let j = run_compiled_js(&js).expect("js");
            out.push(j.time.0 / w.time.0);
        }
    }
    let xs = geomean(&xs_speedups).expect("positive");
    let xl = geomean(&xl_speedups).expect("positive");
    assert!(xs < 1.0, "JS wins at XS on Firefox (gmean speedup {xs})");
    assert!(xl > 1.0, "Wasm wins at XL on Firefox (gmean speedup {xl})");
}

/// §4.4 / Fig 10: JIT transforms JS performance but barely moves Wasm.
#[test]
fn jit_matters_for_js_not_for_wasm() {
    let b = suite::find("gemm").expect("gemm");
    let mut js = js_spec(&b, InputSize::M);
    let js_on = run_compiled_js(&js).expect("js");
    js.jit = JitMode::Disabled;
    let js_off = run_compiled_js(&js).expect("js");
    let js_speedup = js_off.time.0 / js_on.time.0;

    let mut ws = wasm_spec(&b, InputSize::M);
    let wasm_default = run_wasm(&ws).expect("wasm");
    ws.tier_policy = TierPolicy::BasicOnly;
    let wasm_basic = run_wasm(&ws).expect("wasm");
    let wasm_speedup = wasm_basic.time.0 / wasm_default.time.0;

    assert!(js_speedup > 5.0, "JS JIT speedup {js_speedup}");
    assert!(wasm_speedup < 1.6, "Wasm tier-up speedup {wasm_speedup}");
    assert!(js_speedup > 4.0 * wasm_speedup);
}

/// §4.2.1 / Table 2: -Ofast does not produce the fastest Wasm; -Oz is
/// competitive or better (the headline counter-intuition). On x86 the
/// optimizations behave as designed.
#[test]
fn ofast_counterintuition_on_wasm_but_not_x86() {
    let mut wasm_ofast_over_oz = Vec::new();
    let mut x86_o1_over_o2 = Vec::new();
    let mut x86_ofast_over_o2 = Vec::new();
    for b in reps() {
        let t = |level: OptLevel| {
            let mut s = wasm_spec(&b, InputSize::M);
            s.level = level;
            run_wasm(&s).expect("wasm").time.0
        };
        wasm_ofast_over_oz.push(t(OptLevel::Ofast) / t(OptLevel::Oz));
        let n = |level: OptLevel| {
            run_native(b.source, &b.defines(InputSize::M), level, "bench_main")
                .expect("native")
                .time
                .0
        };
        x86_o1_over_o2.push(n(OptLevel::O1) / n(OptLevel::O2));
        x86_ofast_over_o2.push(n(OptLevel::Ofast) / n(OptLevel::O2));
    }
    let wasm_ratio = geomean(&wasm_ofast_over_oz).expect("positive");
    assert!(wasm_ratio >= 1.0, "-Ofast ≥ -Oz on Wasm, got {wasm_ratio}");
    let x86_o1 = geomean(&x86_o1_over_o2).expect("positive");
    assert!(x86_o1 > 1.1, "x86 -O1 slower than -O2: {x86_o1}");
    let x86_ofast = geomean(&x86_ofast_over_o2).expect("positive");
    assert!(x86_ofast < 1.0, "x86 -Ofast fastest: {x86_ofast}");
}

/// §4.3 / Tables 4, 6: Wasm memory grows with input, JS stays flat.
#[test]
fn wasm_memory_grows_js_stays_flat() {
    let b = suite::find("jacobi-2d").expect("jacobi-2d");
    let wasm_xs = run_wasm(&wasm_spec(&b, InputSize::XS)).expect("wasm");
    let wasm_xl = run_wasm(&wasm_spec(&b, InputSize::XL)).expect("wasm");
    let js_xs = run_compiled_js(&js_spec(&b, InputSize::XS)).expect("js");
    let js_xl = run_compiled_js(&js_spec(&b, InputSize::XL)).expect("js");

    assert!(
        wasm_xl.memory_bytes > wasm_xs.memory_bytes + 1024 * 1024,
        "wasm grew: {} -> {}",
        wasm_xs.memory_bytes,
        wasm_xl.memory_bytes
    );
    let js_growth = js_xl.memory_bytes as f64 / js_xs.memory_bytes as f64;
    assert!(js_growth < 1.05, "js flat: {js_growth}");
    // Table 8: Wasm uses a multiple of JS memory.
    assert!(wasm_xs.memory_bytes > 2 * js_xs.memory_bytes);
}

/// §4.2.2: Emscripten output runs faster but reserves far more memory.
#[test]
fn emscripten_faster_but_bigger_than_cheerp() {
    let b = suite::find("gemm").expect("gemm");
    let cheerp = run_wasm(&wasm_spec(&b, InputSize::M)).expect("wasm");
    let mut spec = wasm_spec(&b, InputSize::M);
    spec.toolchain = Toolchain::Emscripten;
    let emscripten = run_wasm(&spec).expect("wasm");
    let speed = cheerp.time.0 / emscripten.time.0;
    assert!(
        speed > 2.0 && speed < 3.5,
        "Emscripten ~2.7x faster: {speed}"
    );
    let mem = emscripten.memory_bytes as f64 / cheerp.memory_bytes as f64;
    assert!(mem > 4.0, "Emscripten uses much more memory: {mem}");
}

/// Table 8 orderings across the six environments (desktop Wasm: Firefox
/// fastest, Edge slowest; mobile Wasm: Edge fastest, Firefox slowest).
#[test]
fn six_environment_orderings() {
    // A compute-heavy kernel, so per-browser steady-state speed (not
    // instantiation constants) decides the ordering, as in Table 8's
    // across-corpus averages.
    let b = suite::find("gemm").expect("gemm");
    let time = |env: Environment| {
        let mut s = wasm_spec(&b, InputSize::M);
        s.env = env;
        run_wasm(&s).expect("wasm").time.0
    };
    let d = |br| time(Environment::new(br, Platform::Desktop));
    let m = |br| time(Environment::new(br, Platform::Mobile));
    assert!(d(Browser::Firefox) < d(Browser::Chrome));
    assert!(d(Browser::Chrome) < d(Browser::Edge));
    assert!(m(Browser::Edge) < m(Browser::Chrome));
    assert!(m(Browser::Chrome) < m(Browser::Firefox));
    // Mobile slower than desktop.
    assert!(m(Browser::Chrome) > d(Browser::Chrome));
}

/// The §3.1 transformation pipeline end-to-end: a benchmark with
/// exceptions and unions compiles and agrees across backends only after
/// transformation, which the frontend applies automatically.
#[test]
fn transformed_constructs_run_everywhere() {
    let src = "union U { double d; long long ll; };\n\
               union U u;\n\
               int status;\n\
               void bench_main() {\n\
                 try {\n\
                   u.d = 2.5;\n\
                   if (u.ll < 0) throw 1;\n\
                   status = 1;\n\
                 } catch (...) { status = 0; }\n\
                 print_int(status);\n\
                 print_long(u.ll);\n\
               }";
    let w = run_wasm(&WasmSpec::new(src)).expect("wasm");
    let j = run_compiled_js(&JsSpec::new(src)).expect("js");
    let n = run_native(src, &[], OptLevel::O2, "bench_main").expect("native");
    assert_eq!(w.output, j.output);
    assert_eq!(w.output, n.output);
    assert_eq!(w.output[0], "1");
}
